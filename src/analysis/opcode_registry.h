#ifndef LIMA_ANALYSIS_OPCODE_REGISTRY_H_
#define LIMA_ANALYSIS_OPCODE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/shape_info.h"

namespace lima {

struct OpcodeEffect;

/// Shape-transfer rule of one opcode: abstract input shapes in, abstract
/// output shapes out. The rule receives its own OpcodeEffect so families of
/// opcodes (elementwise binaries, aggregates) can share one function and
/// branch on `effect.opcode`. A rule returns a non-empty `error` only for
/// *provable* violations — comparable (const or same-symbol) dimensions
/// that the runtime would reject; unknown dimensions never produce errors.
using ShapeRuleFn = ShapeRuleResult (*)(const OpcodeEffect& effect,
                                        const std::vector<ShapeArg>& args);

/// Interned opcode identifier: a dense small integer that replaces opcode
/// strings on every hot path (lineage hashing/equality, cache probing,
/// instruction dispatch, profiling). Catalog opcodes occupy ids
/// [0, NumCatalogOpcodes()) in registration order; names arriving from
/// outside the catalog (deserialized lineage logs, lineage-internal markers
/// like "L"/"read"/"block") are interned on demand after them. Ids are
/// process-local — the serialized lineage format still spells opcode names
/// out, byte-for-byte as before.
class OpcodeId {
 public:
  constexpr OpcodeId() = default;
  constexpr explicit OpcodeId(int32_t value) : value_(value) {}

  constexpr int32_t value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(OpcodeId a, OpcodeId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(OpcodeId a, OpcodeId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(OpcodeId a, OpcodeId b) {
    return a.value_ < b.value_;
  }

 private:
  int32_t value_ = -1;
};

/// Interns `name`, returning its stable id (thread-safe; idempotent).
OpcodeId InternOpcode(std::string_view name);

/// The display/serialization name of an interned id. The reference is
/// stable for the process lifetime. Precondition: `id` was interned.
const std::string& OpcodeName(OpcodeId id);

/// Number of catalog opcodes; ids below this bound have OpcodeEffect
/// metadata, ids at or above it are dynamically interned non-catalog names.
int32_t NumCatalogOpcodes();

/// Coarse classification of runtime opcodes, used by program analyses to
/// reason about an instruction without opcode string comparisons.
enum class OpcodeCategory {
  kCompute,      ///< pure value-producing computation (ComputationInstruction)
  kDataGen,      ///< data generators (rand/sample/seq/fill)
  kBookkeeping,  ///< symbol-table manipulation (assignvar/cpvar/mvvar/rmvar)
  kCall,         ///< user-function invocation (fcall/eval)
  kData,         ///< list construction and element access (list/listidx)
  kIo,           ///< file input/output (readfile/write)
  kDiagnostic,   ///< user-visible effects and termination (print/stop/...)
};

const char* OpcodeCategoryName(OpcodeCategory category);

/// Effect metadata of one runtime opcode — the single source of truth for
/// the properties the lineage/reuse subsystems used to probe via scattered
/// string comparisons (Sec. 4.1: the configurable set of cacheable
/// instructions, and the determinism analysis for multi-level reuse).
///
/// Every opcode the interpreter can execute MUST have an entry; the
/// `lima verify` pass reports any executable instruction whose opcode is
/// missing from this table.
struct OpcodeEffect {
  const char* opcode = "";
  OpcodeCategory category = OpcodeCategory::kCompute;

  /// Operand-slot arity (literals included). -1 = variadic.
  int min_inputs = -1;
  int max_inputs = -1;
  /// Number of produced outputs. -1 = variadic (fcall).
  int num_outputs = 1;

  /// False when an execution of the op may draw system entropy (a
  /// system-generated seed). Individual instruction instances can still be
  /// deterministic (an explicit literal seed); Instruction::IsDeterministic
  /// remains the instance-level refinement of this conservative bit.
  bool deterministic = true;

  /// True when the op binds lineage items for its outputs (or maintains the
  /// lineage map for bookkeeping ops). Ops with num_outputs == 0 may be
  /// untraced.
  bool lineage_traced = true;

  /// Member of the default reusable-instruction set probed against the
  /// lineage cache (Sec. 4.1).
  bool reusable = false;

  /// True when executing the op removes source bindings from the symbol
  /// table and the lineage map (mvvar/rmvar).
  bool frees_inputs = false;

  /// True for ops with effects outside the symbol table: I/O, user-visible
  /// output, or script termination. Blocks containing such ops are never
  /// block-reuse candidates.
  bool side_effects = false;

  /// True when the op resolves its callee at runtime (eval). The static
  /// call-graph determinism fixpoint cannot see through such calls, so the
  /// enclosing function is conservatively nondeterministic.
  bool dynamic_dispatch = false;

  /// True when the op never appears as a node in traced lineage: its
  /// BuildLineage materializes the equivalent unfused/unrewritten items
  /// ("fused", "tsmm_cbind"), keeping traces interchangeable with normal
  /// execution. Replay therefore never needs to construct such an op, and
  /// the factory-coverage gate exempts it.
  bool lineage_transparent = false;

  /// Shape-transfer rule for the forward shape-inference pass
  /// (analysis/shape_inference.h). Required for every value-producing
  /// opcode outside kCall/kBookkeeping — VerifyShapeRuleCoverage() gates
  /// exhaustiveness the same way VerifyFactoryCoverage gates replay.
  ShapeRuleFn shape_rule = nullptr;
};

/// Returns the effect entry for `opcode`, or nullptr when unregistered.
const OpcodeEffect* LookupOpcode(std::string_view opcode);

/// O(1) id-keyed lookup: the effect entry for a catalog id, or nullptr for
/// dynamically interned non-catalog ids (and invalid ids).
const OpcodeEffect* LookupOpcode(OpcodeId id);

/// All registered effects, in stable registration order. Catalog opcode i
/// in this vector has OpcodeId(i).
const std::vector<OpcodeEffect>& AllOpcodeEffects();

bool IsRegisteredOpcode(std::string_view opcode);

/// Registry-backed replacement of the old IsDefaultReusableOpcode string
/// set: true when `opcode` is in the default reusable-instruction set.
bool IsReusableOpcode(std::string_view opcode);
bool IsReusableOpcode(OpcodeId id);

/// Conservative opcode-level determinism (see OpcodeEffect::deterministic).
bool IsDeterministicOpcode(std::string_view opcode);
bool IsDeterministicOpcode(OpcodeId id);

/// fcall/eval — ops that transfer control into user functions.
bool IsFunctionCallOpcode(std::string_view opcode);
bool IsFunctionCallOpcode(OpcodeId id);

/// Ops with effects beyond the symbol table (print/stop/write/...).
bool HasSideEffects(std::string_view opcode);
bool HasSideEffects(OpcodeId id);

/// Internal-consistency lints over the registry itself. Returns one message
/// per violation; empty when the table is sound:
///  - reusable    => deterministic (cache soundness, Sec. 4.1),
///  - reusable    => lineage_traced (a cache key requires a lineage item),
///  - kCompute    => lineage_traced when outputs are produced,
///  - frees_inputs => kBookkeeping.
std::vector<std::string> VerifyOpcodeRegistry();

/// The same lints over an arbitrary effect table (exposed for tests).
std::vector<std::string> VerifyOpcodeEffects(
    const std::vector<OpcodeEffect>& effects);

/// Exhaustiveness gate for shape-transfer rules: one message per catalog
/// opcode that produces values (any category except kCall and kBookkeeping,
/// with num_outputs != 0) but has no `shape_rule`. This set strictly
/// contains the reusable-instruction set, so cache sizing always has a
/// rule to consult. Empty when the table is fully covered.
std::vector<std::string> VerifyShapeRuleCoverage();

}  // namespace lima

template <>
struct std::hash<lima::OpcodeId> {
  size_t operator()(lima::OpcodeId id) const noexcept {
    return std::hash<int32_t>{}(id.value());
  }
};

#endif  // LIMA_ANALYSIS_OPCODE_REGISTRY_H_
