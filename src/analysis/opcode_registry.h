#ifndef LIMA_ANALYSIS_OPCODE_REGISTRY_H_
#define LIMA_ANALYSIS_OPCODE_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

namespace lima {

/// Coarse classification of runtime opcodes, used by program analyses to
/// reason about an instruction without opcode string comparisons.
enum class OpcodeCategory {
  kCompute,      ///< pure value-producing computation (ComputationInstruction)
  kDataGen,      ///< data generators (rand/sample/seq/fill)
  kBookkeeping,  ///< symbol-table manipulation (assignvar/cpvar/mvvar/rmvar)
  kCall,         ///< user-function invocation (fcall/eval)
  kData,         ///< list construction and element access (list/listidx)
  kIo,           ///< file input/output (readfile/write)
  kDiagnostic,   ///< user-visible effects and termination (print/stop/...)
};

const char* OpcodeCategoryName(OpcodeCategory category);

/// Effect metadata of one runtime opcode — the single source of truth for
/// the properties the lineage/reuse subsystems used to probe via scattered
/// string comparisons (Sec. 4.1: the configurable set of cacheable
/// instructions, and the determinism analysis for multi-level reuse).
///
/// Every opcode the interpreter can execute MUST have an entry; the
/// `lima verify` pass reports any executable instruction whose opcode is
/// missing from this table.
struct OpcodeEffect {
  const char* opcode = "";
  OpcodeCategory category = OpcodeCategory::kCompute;

  /// Operand-slot arity (literals included). -1 = variadic.
  int min_inputs = -1;
  int max_inputs = -1;
  /// Number of produced outputs. -1 = variadic (fcall).
  int num_outputs = 1;

  /// False when an execution of the op may draw system entropy (a
  /// system-generated seed). Individual instruction instances can still be
  /// deterministic (an explicit literal seed); Instruction::IsDeterministic
  /// remains the instance-level refinement of this conservative bit.
  bool deterministic = true;

  /// True when the op binds lineage items for its outputs (or maintains the
  /// lineage map for bookkeeping ops). Ops with num_outputs == 0 may be
  /// untraced.
  bool lineage_traced = true;

  /// Member of the default reusable-instruction set probed against the
  /// lineage cache (Sec. 4.1).
  bool reusable = false;

  /// True when executing the op removes source bindings from the symbol
  /// table and the lineage map (mvvar/rmvar).
  bool frees_inputs = false;

  /// True for ops with effects outside the symbol table: I/O, user-visible
  /// output, or script termination. Blocks containing such ops are never
  /// block-reuse candidates.
  bool side_effects = false;

  /// True when the op resolves its callee at runtime (eval). The static
  /// call-graph determinism fixpoint cannot see through such calls, so the
  /// enclosing function is conservatively nondeterministic.
  bool dynamic_dispatch = false;
};

/// Returns the effect entry for `opcode`, or nullptr when unregistered.
const OpcodeEffect* LookupOpcode(std::string_view opcode);

/// All registered effects, in stable registration order.
const std::vector<OpcodeEffect>& AllOpcodeEffects();

bool IsRegisteredOpcode(std::string_view opcode);

/// Registry-backed replacement of the old IsDefaultReusableOpcode string
/// set: true when `opcode` is in the default reusable-instruction set.
bool IsReusableOpcode(std::string_view opcode);

/// Conservative opcode-level determinism (see OpcodeEffect::deterministic).
bool IsDeterministicOpcode(std::string_view opcode);

/// fcall/eval — ops that transfer control into user functions.
bool IsFunctionCallOpcode(std::string_view opcode);

/// Ops with effects beyond the symbol table (print/stop/write/...).
bool HasSideEffects(std::string_view opcode);

/// Internal-consistency lints over the registry itself. Returns one message
/// per violation; empty when the table is sound:
///  - reusable    => deterministic (cache soundness, Sec. 4.1),
///  - reusable    => lineage_traced (a cache key requires a lineage item),
///  - kCompute    => lineage_traced when outputs are produced,
///  - frees_inputs => kBookkeeping.
std::vector<std::string> VerifyOpcodeRegistry();

/// The same lints over an arbitrary effect table (exposed for tests).
std::vector<std::string> VerifyOpcodeEffects(
    const std::vector<OpcodeEffect>& effects);

}  // namespace lima

#endif  // LIMA_ANALYSIS_OPCODE_REGISTRY_H_
