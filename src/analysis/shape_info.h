#ifndef LIMA_ANALYSIS_SHAPE_INFO_H_
#define LIMA_ANALYSIS_SHAPE_INFO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lima {

/// Abstract dimension value of the shape lattice used by interprocedural
/// shape inference (analysis/shape_inference.h):
///
///   kConst    — the dimension is a known compile-time constant,
///   kSym      — the dimension equals an (unknown) symbolic quantity plus a
///               constant offset: `s<id> + value`. Two kSym dims with the
///               same id provably agree up to their offsets, which is enough
///               to prove `t(X) %*% X` conformable without knowing nrow(X),
///   kUnknown  — top: nothing is known.
///
/// The lattice order is kConst/kSym below kUnknown; `JoinDim` is the least
/// upper bound (identical values survive, everything else widens to
/// kUnknown), which makes loop-head widening terminate in one extra pass
/// per loop nest level.
struct Dim {
  enum class Kind : uint8_t { kUnknown, kConst, kSym };

  Kind kind = Kind::kUnknown;
  int64_t value = 0;  ///< kConst: the dimension; kSym: the affine offset
  int32_t sym = -1;   ///< kSym: symbol id (minted by the inference engine)

  static Dim Unknown() { return Dim(); }
  static Dim Const(int64_t v) {
    Dim d;
    d.kind = Kind::kConst;
    d.value = v;
    return d;
  }
  static Dim Sym(int32_t id, int64_t offset = 0) {
    Dim d;
    d.kind = Kind::kSym;
    d.sym = id;
    d.value = offset;
    return d;
  }

  bool is_const() const { return kind == Kind::kConst; }
  bool is_sym() const { return kind == Kind::kSym; }
  bool known() const { return kind != Kind::kUnknown; }

  bool operator==(const Dim& other) const {
    if (kind != other.kind) return false;
    if (kind == Kind::kUnknown) return true;
    if (kind == Kind::kConst) return value == other.value;
    return sym == other.sym && value == other.value;
  }
  bool operator!=(const Dim& other) const { return !(*this == other); }

  std::string ToString() const {
    switch (kind) {
      case Kind::kUnknown:
        return "?";
      case Kind::kConst:
        return std::to_string(value);
      case Kind::kSym: {
        std::string s = "s" + std::to_string(sym);
        if (value > 0) s += "+" + std::to_string(value);
        if (value < 0) s += std::to_string(value);
        return s;
      }
    }
    return "?";
  }
};

/// Least upper bound: equal dims survive, anything else widens to unknown.
inline Dim JoinDim(const Dim& a, const Dim& b) {
  return a == b ? a : Dim::Unknown();
}

/// `a + b` where both are interpreted as integer quantities. Defined when at
/// most one side is symbolic (sym + sym has no affine representation here).
inline Dim AddDims(const Dim& a, const Dim& b) {
  if (!a.known() || !b.known()) return Dim::Unknown();
  if (a.is_const() && b.is_const()) return Dim::Const(a.value + b.value);
  if (a.is_sym() && b.is_const()) return Dim::Sym(a.sym, a.value + b.value);
  if (a.is_const() && b.is_sym()) return Dim::Sym(b.sym, b.value + a.value);
  return Dim::Unknown();
}

/// `a - b`. Two dims over the *same* symbol collapse to a constant — this is
/// what proves `X[2:nrow(X), ]` has `nrow(X) - 1` rows symbolically.
inline Dim SubDims(const Dim& a, const Dim& b) {
  if (!a.known() || !b.known()) return Dim::Unknown();
  if (a.is_const() && b.is_const()) return Dim::Const(a.value - b.value);
  if (a.is_sym() && b.is_const()) return Dim::Sym(a.sym, a.value - b.value);
  if (a.is_sym() && b.is_sym() && a.sym == b.sym) {
    return Dim::Const(a.value - b.value);
  }
  return Dim::Unknown();
}

/// Per-variable abstract shape: scalar / matrix / list kind, matrix
/// dimensions as `Dim`s, an optional integer value for scalars (constant
/// propagation feeds `n = nrow(X)` into `rand(rows=n, ...)`), and a dense
/// sparsity estimate for matrices.
struct ShapeInfo {
  enum class Kind : uint8_t { kUnknown, kScalar, kMatrix, kList };

  Kind kind = Kind::kUnknown;
  Dim rows;            ///< kMatrix only
  Dim cols;            ///< kMatrix only
  Dim value;           ///< kScalar only: integer value when derivable
  double sparsity = 1.0;  ///< kMatrix: nnz / (rows*cols) estimate, 1 = dense

  static ShapeInfo Unknown() { return ShapeInfo(); }
  static ShapeInfo Scalar() {
    ShapeInfo s;
    s.kind = Kind::kScalar;
    return s;
  }
  static ShapeInfo ScalarValue(Dim v) {
    ShapeInfo s;
    s.kind = Kind::kScalar;
    s.value = v;
    return s;
  }
  static ShapeInfo ScalarConst(int64_t v) { return ScalarValue(Dim::Const(v)); }
  static ShapeInfo Matrix(Dim r, Dim c, double sp = 1.0) {
    ShapeInfo s;
    s.kind = Kind::kMatrix;
    s.rows = r;
    s.cols = c;
    s.sparsity = sp;
    return s;
  }
  static ShapeInfo List() {
    ShapeInfo s;
    s.kind = Kind::kList;
    return s;
  }

  bool is_unknown() const { return kind == Kind::kUnknown; }
  bool is_scalar() const { return kind == Kind::kScalar; }
  bool is_matrix() const { return kind == Kind::kMatrix; }
  bool is_list() const { return kind == Kind::kList; }

  /// Fully known = the static memory planner can size it exactly: scalars
  /// and lists always, matrices only with constant dimensions.
  bool fully_known() const {
    if (kind == Kind::kUnknown) return false;
    if (kind != Kind::kMatrix) return true;
    return rows.is_const() && cols.is_const();
  }

  /// Dense payload bytes for the memory estimator; 0 when not fully known.
  int64_t MatrixBytes() const {
    if (kind != Kind::kMatrix || !rows.is_const() || !cols.is_const()) {
      return 0;
    }
    return rows.value * cols.value * static_cast<int64_t>(sizeof(double));
  }

  bool operator==(const ShapeInfo& other) const {
    if (kind != other.kind) return false;
    switch (kind) {
      case Kind::kUnknown:
      case Kind::kList:
        return true;
      case Kind::kScalar:
        return value == other.value;
      case Kind::kMatrix:
        return rows == other.rows && cols == other.cols &&
               sparsity == other.sparsity;
    }
    return false;
  }
  bool operator!=(const ShapeInfo& other) const { return !(*this == other); }

  std::string ToString() const {
    switch (kind) {
      case Kind::kUnknown:
        return "unknown";
      case Kind::kScalar:
        return value.known() ? "scalar(" + value.ToString() + ")" : "scalar";
      case Kind::kMatrix:
        return "matrix[" + rows.ToString() + " x " + cols.ToString() + "]";
      case Kind::kList:
        return "list";
    }
    return "unknown";
  }
};

/// Least upper bound over shapes (used at if-joins and loop heads).
inline ShapeInfo JoinShape(const ShapeInfo& a, const ShapeInfo& b) {
  if (a.kind != b.kind) return ShapeInfo::Unknown();
  switch (a.kind) {
    case ShapeInfo::Kind::kUnknown:
    case ShapeInfo::Kind::kList:
      return a;
    case ShapeInfo::Kind::kScalar:
      return ShapeInfo::ScalarValue(JoinDim(a.value, b.value));
    case ShapeInfo::Kind::kMatrix:
      return ShapeInfo::Matrix(JoinDim(a.rows, b.rows),
                               JoinDim(a.cols, b.cols),
                               a.sparsity > b.sparsity ? a.sparsity
                                                       : b.sparsity);
  }
  return ShapeInfo::Unknown();
}

/// One operand of a shape-transfer rule: the abstract shape of the operand
/// plus — for literal operands and const-propagated scalars — its concrete
/// value, so rules like `rand(rows=, cols=)` can produce constant dims.
struct ShapeArg {
  ShapeInfo shape;
  bool is_literal = false;
  bool has_number = false;  ///< integral numeric value known statically
  int64_t number = 0;
  bool has_text = false;  ///< string literal value ("uniform", ...)
  std::string text;

  /// The operand as an abstract integer quantity: a concrete number when
  /// statically known, else the scalar's symbolic value dim.
  Dim AsDim() const {
    if (has_number) return Dim::Const(number);
    if (shape.is_scalar()) return shape.value;
    return Dim::Unknown();
  }
};

/// Result of one shape-transfer rule application: the output shapes, plus a
/// non-empty `error` when the input shapes are *provably* violated (both
/// sides constant and incompatible) — surfaced as a `shape-mismatch`
/// verifier error with instruction provenance.
struct ShapeRuleResult {
  std::vector<ShapeInfo> outputs;
  std::string error;
};

}  // namespace lima

#endif  // LIMA_ANALYSIS_SHAPE_INFO_H_
