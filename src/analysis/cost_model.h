#ifndef LIMA_ANALYSIS_COST_MODEL_H_
#define LIMA_ANALYSIS_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "analysis/shape_info.h"

namespace lima {

struct OpcodeEffect;

/// Calibration constants of the compile-time cost model (docs/ANALYSIS.md,
/// "Cost model"). All values are nanoseconds on the reference machine the
/// benchmarks run on; they steer *relative* decisions (probe vs. recompute,
/// fuse vs. materialize), so an order of magnitude of slack is tolerable —
/// the planner only acts when the gap between alternatives is wide.
namespace cost {

/// Dense-kernel throughput: one floating-point operation.
inline constexpr double kNanosPerFlop = 0.5;

/// Memory traffic: one byte read or written through the cache hierarchy.
inline constexpr double kNanosPerByte = 0.15;

/// One lineage-cache probe: lineage hash + shard lock + map lookup. An op
/// whose recompute estimate is below this can never win by probing — the
/// static reuse planner marks it must-compute and the runtime skips the
/// probe (RuntimeStats::probe_disabled_static).
inline constexpr double kProbeNanos = 450.0;

/// Allocating + registering one intermediate matrix buffer.
inline constexpr double kAllocNanos = 600.0;

/// Fused-interpreter overhead per cell per step, relative to the dedicated
/// vectorized kernels (the fused kernel dispatches on step kind per cell).
inline constexpr double kFusedStepOverheadNanos = 1.0;

/// Minimum estimated recompute cost for a provably redundant subexpression
/// to surface as a `redundant-computation` verifier warning. Keeps noise
/// ops (nrow twice, scalar arithmetic) out of the diagnostics; cheap
/// redundancy is the reuse cache's job, not the user's.
inline constexpr double kRedundantWarnNanos = 1000.0;

/// Minimum estimated work per parallel chunk of a kernel: dispatching a
/// slice to the worker pool costs on the order of a few microseconds of
/// synchronization, so chunks an order of magnitude above that amortize it
/// and anything smaller runs sequentially. Replaces the old hardcoded
/// `m < 64` / `m < 256` row cutoffs with a FLOPs+bytes estimate.
inline constexpr double kParallelGrainNanos = 50000.0;

/// Ceiling on the chunk fan-out of a single kernel call (keeps the
/// claim-counter contention and slice bookkeeping bounded on huge inputs).
inline constexpr int kMaxParallelChunks = 256;

}  // namespace cost

/// Parallel decomposition of one kernel call: the number of chunks for a
/// kernel estimated at `flops` floating-point operations and `bytes` of
/// memory traffic, targeting ~kParallelGrainNanos of work per chunk. A pure
/// function of the problem size — never of the thread count or budget — so
/// chunked reductions keep a fixed chunk→accumulator ordering and results
/// stay byte-identical at every budget setting (a kernel granted fewer
/// threads runs more chunks per thread, not different chunks). Returns 1
/// (sequential) when the whole call is under two grains.
inline int PlanParallelChunks(double flops, double bytes,
                              int max_chunks = cost::kMaxParallelChunks) {
  double nanos = flops * cost::kNanosPerFlop + bytes * cost::kNanosPerByte;
  if (nanos < 2.0 * cost::kParallelGrainNanos) return 1;
  double chunks = nanos / cost::kParallelGrainNanos;
  if (chunks >= static_cast<double>(max_chunks)) return max_chunks;
  return static_cast<int>(chunks);
}

/// Compile-time cost estimate of one instruction: FLOPs plus bytes moved
/// (operand reads + output writes), combined into nanoseconds with the
/// calibration constants. `known` only when every matrix operand and output
/// has constant dimensions — symbolic or unknown shapes yield no estimate
/// and downstream planners stay conservative.
struct CostEstimate {
  bool known = false;
  double flops = 0;
  int64_t bytes = 0;
  double nanos = 0;
};

/// Estimates `effect`'s cost from abstract operand/output shapes. `effect`
/// may be null (unregistered opcode): the estimate is unknown.
CostEstimate EstimateOpCost(const OpcodeEffect* effect,
                            const std::vector<ShapeArg>& args,
                            const std::vector<ShapeInfo>& outputs);

/// Cost verdict for fusing one additional producer into a cellwise chain:
/// eliminating the materialized intermediate saves its write+read traffic
/// and one allocation; the fused interpreter adds per-cell overhead for the
/// producer's steps.
struct FusionLinkCost {
  bool profitable = false;
  double saving_nanos = 0;   ///< net: traffic+alloc saved minus overhead
  int64_t saved_bytes = 0;   ///< materialized intermediate bytes avoided
};

/// Costs inlining a producer whose output has `cells` cells (cells < 0 =
/// unknown; unknown sizes are treated as profitable to preserve greedy
/// fusion behavior on unshaped programs). `new_interpreted_steps` is the
/// number of steps that move from a dedicated vectorized kernel into the
/// fused interpreter: 1 for a plain producer, 0 for a producer that is
/// already a multi-step fused candidate (its steps were interpreted anyway).
FusionLinkCost EstimateFusionLink(int64_t cells, int new_interpreted_steps);

}  // namespace lima

#endif  // LIMA_ANALYSIS_COST_MODEL_H_
