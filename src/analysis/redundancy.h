#ifndef LIMA_ANALYSIS_REDUNDANCY_H_
#define LIMA_ANALYSIS_REDUNDANCY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/shape_inference.h"
#include "analysis/verifier.h"
#include "runtime/program.h"
#include "runtime/static_plan.h"

namespace lima {

/// Compile-time facts about one value-producing instruction, produced by
/// the global value-numbering pass (AnalyzeRedundancy) and consumed by the
/// compile pipeline: probe-verdict stamping (AttachStaticPlan) and the
/// cost-based fusion planner (lang/fusion_pass.h). Pointers key into the
/// pre-fusion instruction stream, so the pass must run before any rewrite
/// that replaces instructions.
struct InstrStaticFact {
  /// The static lineage hash: (interned opcode, operand value numbers,
  /// literal encodings), deterministic across runs.
  uint64_t value_number = 0;
  ProbeVerdict verdict = ProbeVerdict::kProbeWorthwhile;
  /// Provably recomputes a value available from an earlier instruction.
  bool redundant = false;
  /// The earlier producer lives in a different basic block.
  bool cross_block = false;
  /// Instance-level determinism (seeded datagen counts as deterministic).
  bool deterministic = true;
  /// Static instructions assigned this value number (>= 2 means the value
  /// provably recurs in the program text).
  int occurrences = 1;
  CostEstimate cost;

  // --- shape-derived facts for the fusion planner -----------------------
  /// Single output, provably scalar: fusing it into a cellwise chain would
  /// re-evaluate the scalar once per consumer cell.
  bool scalar_output = false;
  /// Some matrix operand provably differs in shape from the output: the
  /// fused kernel would take its materialized stepwise fallback.
  bool nonuniform = false;
  /// Output cells when the output is a constant-shaped matrix, else -1.
  int64_t out_cells = -1;
};

/// Result of the redundancy & cost analysis over one compiled program.
struct RedundancyAnalysis {
  StaticPlan plan;
  /// `redundant-computation` warnings with provenance (definition site).
  std::vector<Diagnostic> diagnostics;
  /// Per-instruction facts; see InstrStaticFact for pointer validity.
  std::unordered_map<const Instruction*, InstrStaticFact> facts;

  /// nullptr when the instruction was not analyzed.
  const InstrStaticFact* FindFact(const Instruction* instr) const {
    auto it = facts.find(instr);
    return it == facts.end() ? nullptr : &it->second;
  }
};

/// Global value numbering + static reuse planning (Sec. 4.4 taken to
/// compile time): assigns every value-producing instruction a compile-time
/// value number — a static lineage hash over (opcode, operand value
/// numbers, literals) — propagated interprocedurally through deterministic
/// fcalls (call summaries) and across basic blocks, with invalidation at
/// control merges (phi value numbers per join site), loop heads, and
/// nondeterministic ops (fresh site-keyed numbers). A parallel abstract
/// shape environment (the PR-6 lattice) feeds the FLOP+bytes cost model so
/// each instruction is classified must-compute / probe-worthwhile /
/// redundant-in-program, and provably redundant subexpressions above the
/// warning cost threshold surface as `redundant-computation` diagnostics.
///
/// `assumptions` seed shapes of session-bound inputs (same contract as
/// InferShapes). The analysis is deterministic: identical programs and
/// assumptions produce byte-identical plans across runs and processes.
RedundancyAnalysis AnalyzeRedundancy(
    const Program& program, const std::vector<ShapeAssumption>& assumptions);
RedundancyAnalysis AnalyzeRedundancy(const Program& program);

/// Stores the plan on the program and stamps probe verdicts onto its
/// computation instructions (the runtime consults the verdict to skip
/// probes for must-compute ops). Fusion sites recorded later by the fusion
/// planner append to the stored plan.
void AttachStaticPlan(Program* program, const RedundancyAnalysis& analysis);

/// Plan serializers for `lima_run --plan-report` and tests (the planner
/// determinism test compares serialized plans across runs).
std::string StaticPlanToText(const StaticPlan& plan);
std::string StaticPlanToJson(const StaticPlan& plan);

}  // namespace lima

#endif  // LIMA_ANALYSIS_REDUNDANCY_H_
