#include "analysis/verifier.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/opcode_registry.h"
#include "analysis/redundancy.h"
#include "analysis/shape_inference.h"
#include "runtime/analysis.h"
#include "runtime/instruction_factory.h"
#include "runtime/fused_op.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

bool IsTempName(const std::string& name) {
  return name.size() >= 2 && name[0] == '_' &&
         (name[1] == 't' || name[1] == 'p');
}

/// Definedness lattice of one program point: `definite` holds variables
/// defined on every path, `maybe` (a superset) those defined on at least
/// one path.
struct VarState {
  std::unordered_set<std::string> definite;
  std::unordered_set<std::string> maybe;

  void Define(const std::string& var) {
    definite.insert(var);
    maybe.insert(var);
  }
  void Remove(const std::string& var) {
    definite.erase(var);
    maybe.erase(var);
  }
};

/// Collects every variable read in a block tree — instruction inputs and
/// predicate results, but not rmvar names (a removal is not a use). Feeds
/// dead-instruction detection.
void CollectReads(const std::vector<BlockPtr>& blocks,
                  std::unordered_set<std::string>* reads);

void CollectBasicReads(const BasicBlock& block,
                       std::unordered_set<std::string>* reads) {
  for (const auto& instruction : block.instructions()) {
    const auto* var =
        dynamic_cast<const VariableInstruction*>(instruction.get());
    if (var != nullptr &&
        var->variable_kind() == VariableInstruction::Kind::kRemove) {
      continue;
    }
    for (const std::string& name : instruction->InputVars()) {
      reads->insert(name);
    }
  }
}

void CollectPredicateReads(const Predicate& predicate,
                           std::unordered_set<std::string>* reads) {
  CollectBasicReads(predicate.block(), reads);
  reads->insert(predicate.result_var());
}

void CollectReads(const std::vector<BlockPtr>& blocks,
                  std::unordered_set<std::string>* reads) {
  for (const BlockPtr& block : blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic:
        CollectBasicReads(static_cast<const BasicBlock&>(*block), reads);
        break;
      case BlockKind::kIf: {
        const auto& if_block = static_cast<const IfBlock&>(*block);
        CollectPredicateReads(if_block.predicate(), reads);
        CollectReads(if_block.then_blocks(), reads);
        CollectReads(if_block.else_blocks(), reads);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        const auto& for_block = static_cast<const ForBlock&>(*block);
        CollectPredicateReads(for_block.from(), reads);
        CollectPredicateReads(for_block.to(), reads);
        if (!for_block.incr().result_var().empty()) {
          CollectPredicateReads(for_block.incr(), reads);
        }
        CollectReads(for_block.body(), reads);
        break;
      }
      case BlockKind::kWhile: {
        const auto& while_block = static_cast<const WhileBlock&>(*block);
        CollectPredicateReads(while_block.predicate(), reads);
        CollectReads(while_block.body(), reads);
        break;
      }
    }
  }
}

class Verifier {
 public:
  Verifier(const Program& program, const VerifyOptions& options)
      : program_(program), options_(options) {}

  VerifyReport Run() {
    for (const std::string& msg : VerifyOpcodeRegistry()) {
      Report(Diagnostic::Severity::kError, "registry-unsound", msg, "", 0);
    }
    // Catalog/factory drift: a reusable opcode the instruction factory
    // cannot rebuild would break lineage replay (spill-restore, dedup
    // expansion) at runtime; surface it statically here.
    for (const std::string& msg : VerifyFactoryCoverage()) {
      Report(Diagnostic::Severity::kError, "replay-uncovered", msg, "", 0);
    }

    scope_name_ = "main";
    VerifyScope(program_.main(), options_.assume_defined, nullptr);

    for (const auto& [name, fn] : program_.functions()) {
      scope_name_ = name;
      std::vector<std::string> params;
      params.reserve(fn->params().size());
      for (const Function::Param& param : fn->params()) {
        params.push_back(param.name);
      }
      VerifyScope(fn->body(), params, fn.get());
    }

    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.severity < b.severity;
                     });
    return std::move(report_);
  }

 private:
  // ---- Diagnostics -------------------------------------------------------

  void Report(Diagnostic::Severity severity, std::string code,
              std::string message, std::string location, int line) {
    Diagnostic diag;
    diag.severity = severity;
    diag.code = std::move(code);
    diag.message = std::move(message);
    diag.function = scope_name_;
    diag.location = std::move(location);
    diag.source_line = line;
    if (severity == Diagnostic::Severity::kError) {
      ++report_.num_errors;
    } else {
      ++report_.num_warnings;
    }
    report_.diagnostics.push_back(std::move(diag));
  }

  void Error(std::string code, std::string message, const std::string& loc,
             int line) {
    Report(Diagnostic::Severity::kError, std::move(code), std::move(message),
           loc, line);
  }

  void Warn(std::string code, std::string message, const std::string& loc,
            int line) {
    Report(Diagnostic::Severity::kWarning, std::move(code), std::move(message),
           loc, line);
  }

  // ---- Scope driver ------------------------------------------------------

  void VerifyScope(const std::vector<BlockPtr>& body,
                   const std::vector<std::string>& defined_on_entry,
                   const Function* fn) {
    VarState state;
    for (const std::string& var : defined_on_entry) state.Define(var);

    scope_reads_.clear();
    CollectReads(body, &scope_reads_);
    if (fn != nullptr) {
      for (const std::string& out : fn->outputs()) scope_reads_.insert(out);
    }
    loop_seeded_.clear();

    WalkBlocks(body, &state, fn == nullptr ? "main" : "body");

    if (fn != nullptr) {
      for (const std::string& out : fn->outputs()) {
        if (state.maybe.count(out) == 0) {
          Error("missing-output",
                "function output '" + out + "' is never defined", "body", 0);
        } else if (state.definite.count(out) == 0) {
          Warn("maybe-missing-output",
               "function output '" + out + "' is not defined on every path",
               "body", 0);
        }
      }
    }

    if (options_.check_leaks) {
      std::vector<std::string> leaked(state.maybe.begin(), state.maybe.end());
      std::sort(leaked.begin(), leaked.end());
      for (const std::string& var : leaked) {
        if (!IsTempName(var)) continue;
        Warn("leaked-temp",
             "temporary '" + var + "' is still live at scope end", "end", 0);
      }
    }
  }

  // ---- Block walk --------------------------------------------------------

  static std::string Sub(const std::string& path, const std::string& part) {
    return path + "/" + part;
  }

  void WalkBlocks(const std::vector<BlockPtr>& blocks, VarState* state,
                  const std::string& path) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      WalkBlock(*blocks[i], state,
                Sub(path, "block[" + std::to_string(i) + "]"));
    }
  }

  void WalkBlock(const ProgramBlock& block, VarState* state,
                 const std::string& path) {
    switch (block.kind()) {
      case BlockKind::kBasic:
        WalkBasicBlock(static_cast<const BasicBlock&>(block), state, path);
        break;
      case BlockKind::kIf: {
        const auto& if_block = static_cast<const IfBlock&>(block);
        WalkPredicate(if_block.predicate(), state, Sub(path, "pred"));
        VarState then_state = *state;
        VarState else_state = *state;
        WalkBlocks(if_block.then_blocks(), &then_state, Sub(path, "then"));
        WalkBlocks(if_block.else_blocks(), &else_state, Sub(path, "else"));
        // Merge: definitely defined on both paths, maybe on either.
        VarState merged;
        for (const std::string& var : then_state.definite) {
          if (else_state.definite.count(var) > 0) merged.definite.insert(var);
        }
        merged.maybe = then_state.maybe;
        merged.maybe.insert(else_state.maybe.begin(), else_state.maybe.end());
        *state = std::move(merged);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        const auto& for_block = static_cast<const ForBlock&>(block);
        WalkPredicate(for_block.from(), state, Sub(path, "from"));
        WalkPredicate(for_block.to(), state, Sub(path, "to"));
        if (!for_block.incr().result_var().empty()) {
          WalkPredicate(for_block.incr(), state, Sub(path, "incr"));
        }
        VarState body_state = *state;
        body_state.Define(for_block.iter_var());
        std::vector<std::string> seeded =
            SeedLoopBody(for_block.body(), &body_state);
        WalkBlocks(for_block.body(), &body_state, Sub(path, "body"));
        UnseedLoopBody(seeded);
        if (block.kind() == BlockKind::kParFor) {
          // Surface the compile-time loop-dependency findings alongside the
          // dataflow diagnostics: a proven carried dependence is an error
          // (fails under VerifyMode::kStrict); everything the analysis
          // merely failed to prove independent is a warning (the runtime
          // serializes the loop).
          const auto& parfor = static_cast<const ParForBlock&>(block);
          if (parfor.dep_info().analyzed) {
            for (const ParForFinding& finding : parfor.dep_info().findings) {
              const int line = finding.source_line != 0
                                   ? finding.source_line
                                   : parfor.source_line();
              Report(finding.blocking ? Diagnostic::Severity::kError
                                      : Diagnostic::Severity::kWarning,
                     "parfor-" + finding.code, finding.message, path, line);
            }
          }
          // Worker-local bindings are discarded; only overwrites of
          // pre-existing variables are merged back, so the enclosing state
          // is unchanged (removals happen in worker tables too).
          break;
        }
        MergeLoopExit(*state, body_state, /*body_definite=*/false, state);
        state->maybe.insert(for_block.iter_var());
        break;
      }
      case BlockKind::kWhile: {
        const auto& while_block = static_cast<const WhileBlock&>(block);
        // The predicate executes at least once, so its writes are definite
        // for everything after the loop.
        WalkPredicate(while_block.predicate(), state, Sub(path, "pred"));
        VarState body_state = *state;
        std::vector<std::string> seeded =
            SeedLoopBody(while_block.body(), &body_state);
        WalkBlocks(while_block.body(), &body_state, Sub(path, "body"));
        UnseedLoopBody(seeded);
        MergeLoopExit(*state, body_state, /*body_definite=*/false, state);
        break;
      }
    }
  }

  /// Pre-seeds loop-carried writes as "maybe defined" so a read at the top
  /// of iteration N of a variable written in iteration N-1 is not a false
  /// use-before-def; such variables are tracked in `loop_seeded_` to mute
  /// the maybe-warnings the seeding would otherwise cause.
  std::vector<std::string> SeedLoopBody(const std::vector<BlockPtr>& body,
                                        VarState* body_state) {
    BodyVars vars = AnalyzeBodyVars(body);
    std::vector<std::string> seeded;
    for (const std::string& var : vars.outputs) {
      // Compiler temps are statement-scoped: they cannot carry across
      // iterations, and seeding them would survive the loop-exit merge and
      // read as leaks at scope end.
      if (IsTempName(var)) continue;
      if (body_state->maybe.insert(var).second &&
          loop_seeded_.insert(var).second) {
        seeded.push_back(var);
      }
    }
    return seeded;
  }

  void UnseedLoopBody(const std::vector<std::string>& seeded) {
    for (const std::string& var : seeded) loop_seeded_.erase(var);
  }

  /// State after a loop that may run zero times: definite only when defined
  /// before and not (possibly) removed by the body; maybe when defined
  /// before or on some body path.
  void MergeLoopExit(const VarState& before, const VarState& after_body,
                     bool body_definite, VarState* out) {
    VarState merged;
    for (const std::string& var : before.definite) {
      if (body_definite || after_body.definite.count(var) > 0) {
        merged.definite.insert(var);
      }
    }
    merged.maybe = before.maybe;
    merged.maybe.insert(after_body.maybe.begin(), after_body.maybe.end());
    *out = std::move(merged);
  }

  void WalkPredicate(const Predicate& predicate, VarState* state,
                     const std::string& path) {
    for (const auto& instruction : predicate.block().instructions()) {
      VisitInstruction(*instruction, state, path);
    }
    CheckRead(*state, predicate.result_var(), path, 0);
  }

  void WalkBasicBlock(const BasicBlock& block, VarState* state,
                      const std::string& path) {
    for (const auto& instruction : block.instructions()) {
      VisitInstruction(*instruction, state, path);
    }
  }

  // ---- Instruction-level checks ------------------------------------------

  void CheckRead(const VarState& state, const std::string& var,
                 const std::string& loc, int line) {
    if (var.empty()) return;
    if (state.definite.count(var) > 0) return;
    if (state.maybe.count(var) > 0) {
      if (loop_seeded_.count(var) == 0) {
        Warn("maybe-use-before-def",
             "variable '" + var + "' may be undefined here", loc, line);
      }
      return;
    }
    Error("use-before-def", "variable '" + var + "' is read before any definition",
          loc, line);
  }

  void VisitInstruction(const Instruction& instruction, VarState* state,
                        const std::string& loc) {
    const int line = instruction.source_line();
    const std::string& op = instruction.opcode();
    const OpcodeEffect* effect = LookupOpcode(op);
    if (effect == nullptr) {
      Error("unknown-opcode",
            "opcode '" + op + "' has no effect-registry entry", loc, line);
    }

    const auto* computation =
        dynamic_cast<const ComputationInstruction*>(&instruction);
    if (computation != nullptr && effect != nullptr) {
      const int arity = static_cast<int>(computation->operands().size());
      if (arity < effect->min_inputs ||
          (effect->max_inputs != -1 && arity > effect->max_inputs)) {
        Error("arity-mismatch",
              "opcode '" + op + "' has " + std::to_string(arity) +
                  " operands, registry expects [" +
                  std::to_string(effect->min_inputs) + ", " +
                  (effect->max_inputs == -1
                       ? std::string("inf")
                       : std::to_string(effect->max_inputs)) +
                  "]",
              loc, line);
      }
      const int outs = static_cast<int>(computation->OutputVars().size());
      if (effect->num_outputs != -1 && outs != effect->num_outputs) {
        Error("arity-mismatch",
              "opcode '" + op + "' produces " + std::to_string(outs) +
                  " outputs, registry expects " +
                  std::to_string(effect->num_outputs),
              loc, line);
      }
      if (!effect->lineage_traced) {
        Error("untraced-compute",
              "compute opcode '" + op + "' is not lineage-traced; cached "
              "results would be unkeyable",
              loc, line);
      }
    }

    // Shadowed multi-output bindings: later writes silently win.
    std::vector<std::string> outputs = instruction.OutputVars();
    {
      std::unordered_set<std::string> seen;
      for (const std::string& out : outputs) {
        if (!seen.insert(out).second) {
          Error("shadowed-output",
                "output '" + out + "' is bound more than once by one '" + op +
                    "' instruction",
                loc, line);
        }
      }
    }

    // Variable bookkeeping: removals and renames mutate the state.
    const auto* var_instruction =
        dynamic_cast<const VariableInstruction*>(&instruction);
    if (var_instruction != nullptr &&
        var_instruction->variable_kind() ==
            VariableInstruction::Kind::kRemove) {
      for (const std::string& name : var_instruction->names()) {
        if (state->maybe.count(name) == 0) {
          Error("rmvar-undefined",
                "rmvar of '" + name + "' which is undefined on every path",
                loc, line);
        } else if (state->definite.count(name) == 0 &&
                   loop_seeded_.count(name) == 0) {
          Warn("maybe-rmvar-undefined",
               "rmvar of '" + name + "' which may be undefined here", loc,
               line);
        }
        state->Remove(name);
      }
      return;
    }

    if (op == "fcall") {
      CheckFunctionCall(
          static_cast<const FunctionCallInstruction&>(instruction), loc,
          line);
    }
    const auto* fused = dynamic_cast<const FusedInstruction*>(&instruction);
    if (fused != nullptr) {
      CheckFused(*fused, loc, line);
    }

    for (const std::string& var : instruction.InputVars()) {
      CheckRead(*state, var, loc, line);
    }

    if (var_instruction != nullptr &&
        var_instruction->variable_kind() == VariableInstruction::Kind::kMove) {
      state->Remove(var_instruction->InputVars()[0]);
    }

    if (options_.check_dead_code && computation != nullptr &&
        effect != nullptr && !effect->side_effects && !outputs.empty()) {
      bool all_unused = true;
      for (const std::string& out : outputs) {
        if (!IsTempName(out) || scope_reads_.count(out) > 0) {
          all_unused = false;
          break;
        }
      }
      if (all_unused) {
        Warn("dead-instruction",
             "results of '" + op + "' are never used", loc, line);
      }
    }

    for (const std::string& out : outputs) state->Define(out);
  }

  void CheckFunctionCall(const FunctionCallInstruction& call,
                         const std::string& loc, int line) {
    const Function* fn = program_.GetFunction(call.function_name());
    if (fn == nullptr) {
      Error("undefined-function",
            "call to undefined function '" + call.function_name() + "'", loc,
            line);
      return;
    }
    const size_t num_args = call.args().size();
    const auto& params = fn->params();
    if (num_args > params.size()) {
      Error("fcall-arity",
            "function '" + fn->name() + "' takes " +
                std::to_string(params.size()) + " parameters, got " +
                std::to_string(num_args) + " arguments",
            loc, line);
    } else {
      for (size_t i = num_args; i < params.size(); ++i) {
        if (!params[i].has_default) {
          Error("fcall-arity",
                "call to '" + fn->name() + "' omits required parameter '" +
                    params[i].name + "'",
                loc, line);
        }
      }
    }
    if (call.OutputVars().size() > fn->outputs().size()) {
      Error("fcall-arity",
            "function '" + fn->name() + "' returns " +
                std::to_string(fn->outputs().size()) + " values, call binds " +
                std::to_string(call.OutputVars().size()),
            loc, line);
    }
  }

  /// Fused operators must expand to a lineage trace identical to unfused
  /// execution (fused_op.cc BuildLineage walks the same step chain), so the
  /// step graph itself must be well-formed: every source in range, every
  /// step and operand feeding the final result.
  void CheckFused(const FusedInstruction& fused, const std::string& loc,
                  int line) {
    const int num_operands = static_cast<int>(fused.operands().size());
    const auto& steps = fused.steps();
    const int num_steps = static_cast<int>(steps.size());
    if (num_steps == 0) {
      Error("fused-bad-source", "fused instruction has no steps", loc, line);
      return;
    }
    std::vector<bool> operand_used(num_operands, false);
    std::vector<bool> step_used(num_steps, false);
    auto check_src = [&](const FusedStep::Src& src, int step_index) {
      if (src.kind == FusedStep::Src::Kind::kOperand) {
        if (src.index < 0 || src.index >= num_operands) {
          Error("fused-bad-source",
                "fused step " + std::to_string(step_index) +
                    " references operand " + std::to_string(src.index) +
                    " of " + std::to_string(num_operands),
                loc, line);
          return;
        }
        operand_used[src.index] = true;
      } else {
        if (src.index < 0 || src.index >= step_index) {
          Error("fused-bad-source",
                "fused step " + std::to_string(step_index) +
                    " references step " + std::to_string(src.index) +
                    " which is not an earlier step",
                loc, line);
          return;
        }
        step_used[src.index] = true;
      }
    };
    for (int i = 0; i < num_steps; ++i) {
      check_src(steps[i].lhs, i);
      if (steps[i].is_binary) check_src(steps[i].rhs, i);
    }
    step_used[num_steps - 1] = true;  // the final step is the result
    for (int i = 0; i < num_steps; ++i) {
      if (!step_used[i]) {
        Warn("fused-dead-step",
             "fused step " + std::to_string(i) +
                 " is computed but never consumed",
             loc, line);
      }
    }
    for (int i = 0; i < num_operands; ++i) {
      if (!operand_used[i]) {
        Warn("fused-dead-operand",
             "fused operand " + std::to_string(i) + " is never read", loc,
             line);
      }
    }
  }

  const Program& program_;
  const VerifyOptions& options_;
  VerifyReport report_;
  std::string scope_name_;
  std::unordered_set<std::string> scope_reads_;
  std::unordered_set<std::string> loop_seeded_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out =
      severity == Severity::kError ? "error[" : "warning[";
  out += code;
  out += "] ";
  out += function;
  if (!location.empty()) {
    out += " at ";
    out += location;
  }
  if (source_line > 0) {
    out += " (line ";
    out += std::to_string(source_line);
    out += ")";
  }
  out += ": ";
  out += message;
  return out;
}

std::string VerifyReport::ToString() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics) {
    out += diag.ToString();
    out += "\n";
  }
  out += "verify: ";
  out += std::to_string(num_errors);
  out += " error(s), ";
  out += std::to_string(num_warnings);
  out += " warning(s)\n";
  return out;
}

VerifyReport VerifyProgram(const Program& program,
                           const VerifyOptions& options) {
  VerifyReport report = Verifier(program, options).Run();
  if (options.check_shapes || options.check_redundancy) {
    std::vector<ShapeAssumption> assumptions;
    std::unordered_set<std::string> matrices;
    for (size_t i = 0; i < options.assume_matrix_names.size() &&
                       i < options.assume_matrix_dims.size();
         ++i) {
      matrices.insert(options.assume_matrix_names[i]);
      assumptions.push_back(
          {options.assume_matrix_names[i],
           ShapeInfo::Matrix(Dim::Const(options.assume_matrix_dims[i].first),
                             Dim::Const(options.assume_matrix_dims[i].second))});
    }
    for (const std::string& name : options.assume_defined) {
      if (matrices.count(name) == 0) {
        assumptions.push_back({name, ShapeInfo::Scalar()});
      }
    }
    auto append = [&report](std::vector<Diagnostic> diags) {
      for (Diagnostic& diag : diags) {
        if (diag.severity == Diagnostic::Severity::kError) {
          ++report.num_errors;
        } else {
          ++report.num_warnings;
        }
        report.diagnostics.push_back(std::move(diag));
      }
    };
    if (options.check_shapes) {
      append(InferShapes(program, assumptions).diagnostics);
    }
    if (options.check_redundancy) {
      append(AnalyzeRedundancy(program, assumptions).diagnostics);
    }
    std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.severity < b.severity;
                     });
  }
  return report;
}

VerifyReport VerifyProgram(const Program& program) {
  return VerifyProgram(program, VerifyOptions());
}

}  // namespace lima
