#include "analysis/opcode_registry.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/check.h"

namespace lima {

namespace {

using Cat = OpcodeCategory;

// Builders keep the table below readable; every field deviation from the
// category default is spelled out at the entry.
OpcodeEffect Compute(const char* op, int inputs, bool reusable,
                     int outputs = 1) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kCompute;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.num_outputs = outputs;
  e.reusable = reusable;
  return e;
}

OpcodeEffect DataGen(const char* op, int inputs, bool deterministic) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kDataGen;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.deterministic = deterministic;
  return e;
}

OpcodeEffect Bookkeeping(const char* op, int inputs, int outputs,
                         bool frees_inputs) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kBookkeeping;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.num_outputs = outputs;
  e.frees_inputs = frees_inputs;
  return e;
}

std::vector<OpcodeEffect> BuildRegistry() {
  std::vector<OpcodeEffect> ops;

  // --- Elementwise binary (BinaryOpName) -------------------------------
  for (const char* op : {"+", "-", "*", "/", "^", "min", "max", "==", "!=",
                         "<", ">", "<=", ">=", "&", "|", "%%", "%/%"}) {
    ops.push_back(Compute(op, 2, /*reusable=*/true));
  }
  // Cell-wise ternary; counted with the binaries in the default reusable
  // set (Sec. 4.1).
  ops.push_back(Compute("ifelse", 3, /*reusable=*/true));

  // --- Elementwise unary (UnaryOpName) ---------------------------------
  for (const char* op : {"exp", "log", "sqrt", "abs", "round", "floor",
                         "ceil", "sign", "uminus", "!", "sigmoid"}) {
    ops.push_back(Compute(op, 1, /*reusable=*/true));
  }

  // --- Aggregates ------------------------------------------------------
  for (const char* op :
       {"sum", "mean", "ua_min", "ua_max", "trace", "colSums", "colMeans",
        "colMins", "colMaxs", "colVars", "rowSums", "rowMeans", "rowMins",
        "rowMaxs", "rowIndexMax"}) {
    ops.push_back(Compute(op, 1, /*reusable=*/true));
  }

  // --- Matrix multiplications and factorizations -----------------------
  ops.push_back(Compute("mm", 2, /*reusable=*/true));
  ops.push_back(Compute("tsmm", 1, /*reusable=*/true));
  // Legacy SystemDS opcode (X %*% t(X)) kept in the reusable set for
  // lineage-log compatibility; replayable via the instruction factory even
  // though no current compiler rewrite emits it.
  ops.push_back(Compute("tmm", 1, /*reusable=*/true));
  ops.push_back(Compute("solve", 2, /*reusable=*/true));
  ops.push_back(Compute("cholesky", 1, /*reusable=*/true));
  ops.push_back(Compute("eigen", 1, /*reusable=*/true, /*outputs=*/2));
  {
    // Traces as tsmm(cbind(A, B)) — never as a "tsmm_cbind" lineage node.
    OpcodeEffect tsmm_cbind = Compute("tsmm_cbind", 2, /*reusable=*/true);
    tsmm_cbind.lineage_transparent = true;
    ops.push_back(tsmm_cbind);
  }

  // --- Reorganizations and indexing ------------------------------------
  ops.push_back(Compute("t", 1, /*reusable=*/true));
  ops.push_back(Compute("rev", 1, /*reusable=*/true));
  ops.push_back(Compute("diag", 1, /*reusable=*/true));
  ops.push_back(Compute("reshape", 3, /*reusable=*/true));
  ops.push_back(Compute("cbind", 2, /*reusable=*/true));
  ops.push_back(Compute("rbind", 2, /*reusable=*/true));
  ops.push_back(Compute("rightindex", 5, /*reusable=*/true));
  ops.push_back(Compute("leftindex", 6, /*reusable=*/true));
  ops.push_back(Compute("selcols", 2, /*reusable=*/true));
  ops.push_back(Compute("selrows", 2, /*reusable=*/true));
  ops.push_back(Compute("table", 4, /*reusable=*/true));
  ops.push_back(Compute("order", 3, /*reusable=*/true));

  // --- Fused operators (Sec. 3.3): variadic operands, one output -------
  {
    OpcodeEffect fused = Compute("fused", -1, /*reusable=*/true);
    fused.min_inputs = 1;
    fused.max_inputs = -1;
    // Traces as the per-step unfused items — never as a "fused" node.
    fused.lineage_transparent = true;
    ops.push_back(fused);
  }

  // --- Non-reusable compute: metadata, casts, rendering ----------------
  ops.push_back(Compute("nrow", 1, /*reusable=*/false));
  ops.push_back(Compute("ncol", 1, /*reusable=*/false));
  ops.push_back(Compute("length", 1, /*reusable=*/false));
  ops.push_back(Compute("castdts", 1, /*reusable=*/false));
  ops.push_back(Compute("castsdm", 1, /*reusable=*/false));
  ops.push_back(Compute("toString", 1, /*reusable=*/false));

  // --- Data generators -------------------------------------------------
  // rand/sample may draw a system seed (seed operand -1); instances with a
  // literal seed refine this via Instruction::IsDeterministic.
  ops.push_back(DataGen("rand", 7, /*deterministic=*/false));
  ops.push_back(DataGen("sample", 3, /*deterministic=*/false));
  ops.push_back(DataGen("seq", 3, /*deterministic=*/true));
  ops.push_back(DataGen("fill", 3, /*deterministic=*/true));

  // --- Lists -----------------------------------------------------------
  {
    OpcodeEffect list;
    list.opcode = "list";
    list.category = Cat::kData;
    list.min_inputs = 0;
    list.max_inputs = -1;
    ops.push_back(list);
  }
  {
    OpcodeEffect listidx;
    listidx.opcode = "listidx";
    listidx.category = Cat::kData;
    listidx.min_inputs = 2;
    listidx.max_inputs = 2;
    ops.push_back(listidx);
  }

  // --- Variable bookkeeping --------------------------------------------
  ops.push_back(Bookkeeping("assignvar", 0, 1, /*frees_inputs=*/false));
  ops.push_back(Bookkeeping("cpvar", 1, 1, /*frees_inputs=*/false));
  ops.push_back(Bookkeeping("mvvar", 1, 1, /*frees_inputs=*/true));
  {
    OpcodeEffect rmvar = Bookkeeping("rmvar", -1, 0, /*frees_inputs=*/true);
    rmvar.min_inputs = 1;
    rmvar.max_inputs = -1;
    ops.push_back(rmvar);
  }

  // --- Function invocation ---------------------------------------------
  {
    OpcodeEffect fcall;
    fcall.opcode = "fcall";
    fcall.category = Cat::kCall;
    fcall.min_inputs = 0;
    fcall.max_inputs = -1;
    fcall.num_outputs = -1;
    ops.push_back(fcall);
  }
  {
    OpcodeEffect eval;
    eval.opcode = "eval";
    eval.category = Cat::kCall;
    eval.min_inputs = 2;
    eval.max_inputs = 2;
    eval.num_outputs = 1;
    // The callee is a runtime value; the determinism fixpoint cannot
    // resolve it, so eval is conservatively nondeterministic.
    eval.deterministic = false;
    eval.dynamic_dispatch = true;
    ops.push_back(eval);
  }

  // --- I/O --------------------------------------------------------------
  {
    OpcodeEffect read;
    read.opcode = "readfile";
    read.category = Cat::kIo;
    read.min_inputs = 1;
    read.max_inputs = 1;
    // Files are immutable (Sec. 3.4): reads are pure given the path.
    ops.push_back(read);
  }
  {
    OpcodeEffect write;
    write.opcode = "write";
    write.category = Cat::kIo;
    write.min_inputs = 2;
    write.max_inputs = 2;
    write.num_outputs = 0;
    write.lineage_traced = false;
    write.side_effects = true;
    ops.push_back(write);
  }

  // --- Diagnostics ------------------------------------------------------
  {
    OpcodeEffect print;
    print.opcode = "print";
    print.category = Cat::kDiagnostic;
    print.min_inputs = 1;
    print.max_inputs = 1;
    print.num_outputs = 0;
    print.lineage_traced = false;
    print.side_effects = true;
    ops.push_back(print);
  }
  {
    OpcodeEffect stop;
    stop.opcode = "stop";
    stop.category = Cat::kDiagnostic;
    stop.min_inputs = 1;
    stop.max_inputs = 1;
    stop.num_outputs = 0;
    stop.lineage_traced = false;
    stop.side_effects = true;
    ops.push_back(stop);
  }
  {
    OpcodeEffect lineageof;
    lineageof.opcode = "lineageof";
    lineageof.category = Cat::kDiagnostic;
    lineageof.min_inputs = 1;
    lineageof.max_inputs = 1;
    ops.push_back(lineageof);
  }

  return ops;
}

const std::unordered_map<std::string_view, const OpcodeEffect*>& Index() {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string_view, const OpcodeEffect*>;
    for (const OpcodeEffect& effect : AllOpcodeEffects()) {
      (*map)[effect.opcode] = &effect;
    }
    return map;
  }();
  return *index;
}

/// The process-wide intern table. Catalog opcodes are interned eagerly at
/// construction (so catalog opcode i always has id i); everything else is
/// added on demand under the lock. Name storage is a deque: growth never
/// invalidates references to existing strings, so OpcodeName can hand out
/// stable `const std::string&`.
struct InternTable {
  InternTable() {
    for (const OpcodeEffect& effect : AllOpcodeEffects()) {
      names.emplace_back(effect.opcode);
      index.emplace(names.back(), static_cast<int32_t>(names.size()) - 1);
    }
    num_catalog = static_cast<int32_t>(names.size());
  }

  mutable std::shared_mutex mutex;
  std::unordered_map<std::string_view, int32_t> index;  ///< keys into `names`
  std::deque<std::string> names;
  int32_t num_catalog = 0;
};

InternTable& Interns() {
  static auto* table = new InternTable();
  return *table;
}

}  // namespace

OpcodeId InternOpcode(std::string_view name) {
  InternTable& table = Interns();
  {
    std::shared_lock<std::shared_mutex> lock(table.mutex);
    auto it = table.index.find(name);
    if (it != table.index.end()) return OpcodeId(it->second);
  }
  std::unique_lock<std::shared_mutex> lock(table.mutex);
  auto it = table.index.find(name);
  if (it != table.index.end()) return OpcodeId(it->second);
  table.names.emplace_back(name);
  int32_t id = static_cast<int32_t>(table.names.size()) - 1;
  table.index.emplace(table.names.back(), id);
  return OpcodeId(id);
}

const std::string& OpcodeName(OpcodeId id) {
  InternTable& table = Interns();
  // Catalog names are immutable after construction — no lock needed.
  if (id.value() >= 0 && id.value() < table.num_catalog) {
    return table.names[id.value()];
  }
  std::shared_lock<std::shared_mutex> lock(table.mutex);
  LIMA_CHECK(id.value() >= 0 &&
             id.value() < static_cast<int32_t>(table.names.size()))
      << "OpcodeName of uninterned id " << id.value();
  // Safe to return after unlock: deque growth does not move elements and
  // interned names are never mutated.
  return table.names[id.value()];
}

int32_t NumCatalogOpcodes() { return Interns().num_catalog; }

const OpcodeEffect* LookupOpcode(OpcodeId id) {
  if (!id.valid()) return nullptr;
  const std::vector<OpcodeEffect>& effects = AllOpcodeEffects();
  if (id.value() >= static_cast<int32_t>(effects.size())) return nullptr;
  return &effects[id.value()];
}

bool IsReusableOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->reusable;
}

bool IsDeterministicOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->deterministic;
}

bool IsFunctionCallOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->category == Cat::kCall;
}

bool HasSideEffects(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect == nullptr || effect->side_effects;
}

const char* OpcodeCategoryName(OpcodeCategory category) {
  switch (category) {
    case Cat::kCompute:
      return "compute";
    case Cat::kDataGen:
      return "datagen";
    case Cat::kBookkeeping:
      return "bookkeeping";
    case Cat::kCall:
      return "call";
    case Cat::kData:
      return "data";
    case Cat::kIo:
      return "io";
    case Cat::kDiagnostic:
      return "diagnostic";
  }
  return "unknown";
}

const std::vector<OpcodeEffect>& AllOpcodeEffects() {
  static const auto* registry = new std::vector<OpcodeEffect>(BuildRegistry());
  return *registry;
}

const OpcodeEffect* LookupOpcode(std::string_view opcode) {
  const auto& index = Index();
  auto it = index.find(opcode);
  return it == index.end() ? nullptr : it->second;
}

bool IsRegisteredOpcode(std::string_view opcode) {
  return LookupOpcode(opcode) != nullptr;
}

bool IsReusableOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->reusable;
}

bool IsDeterministicOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->deterministic;
}

bool IsFunctionCallOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->category == Cat::kCall;
}

bool HasSideEffects(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  // Unknown opcodes are treated as side-effecting: analyses must stay
  // conservative for anything outside the registry.
  return effect == nullptr || effect->side_effects;
}

std::vector<std::string> VerifyOpcodeEffects(
    const std::vector<OpcodeEffect>& effects) {
  std::vector<std::string> violations;
  auto report = [&violations](const OpcodeEffect& effect, const char* what) {
    violations.push_back(std::string("opcode '") + effect.opcode + "' " +
                         what);
  };
  for (const OpcodeEffect& effect : effects) {
    if (effect.reusable && !effect.deterministic) {
      report(effect, "is reusable but not deterministic");
    }
    if (effect.reusable && !effect.lineage_traced) {
      report(effect, "is reusable but not lineage-traced");
    }
    if (effect.category == Cat::kCompute && effect.num_outputs != 0 &&
        !effect.lineage_traced) {
      report(effect, "is a compute op without lineage tracing");
    }
    if (effect.frees_inputs && effect.category != Cat::kBookkeeping) {
      report(effect, "frees inputs outside the bookkeeping category");
    }
    if (effect.max_inputs != -1 && effect.min_inputs > effect.max_inputs) {
      report(effect, "has min_inputs > max_inputs");
    }
  }
  return violations;
}

std::vector<std::string> VerifyOpcodeRegistry() {
  return VerifyOpcodeEffects(AllOpcodeEffects());
}

}  // namespace lima
