#include "analysis/opcode_registry.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/check.h"

namespace lima {

namespace {

using Cat = OpcodeCategory;

// ---------------------------------------------------------------------------
// Shape-transfer rules (one per value-producing opcode; families share a
// function and branch on effect.opcode). Rules mirror the runtime's own
// validity checks exactly: an error is returned only when comparable (const
// or same-symbol) dimensions prove the runtime would reject the operands.
// ---------------------------------------------------------------------------

const ShapeInfo& ArgShape(const std::vector<ShapeArg>& args, size_t i) {
  static const ShapeInfo kUnknown;
  return i < args.size() ? args[i].shape : kUnknown;
}

ShapeRuleResult Out(ShapeInfo s) {
  ShapeRuleResult r;
  r.outputs.push_back(std::move(s));
  return r;
}

ShapeRuleResult ShapeError(std::string message) {
  ShapeRuleResult r;
  r.error = std::move(message);
  return r;
}

std::string DimPair(const Dim& a, const Dim& b) {
  return a.ToString() + " vs " + b.ToString();
}

// Two dimensions the runtime requires to be equal (cbind rows, mm inner
// dims, ...): a provable mismatch sets *error; otherwise the merged dim
// keeps whichever side is known.
Dim MergeEqualDims(const Dim& a, const Dim& b, const char* what,
                   std::string* error) {
  if (a.known() && b.known() && a != b) {
    // Distinct symbols may still be equal at runtime — only flag pairs the
    // runtime would provably reject: const-const, or same-symbol different
    // offsets (s+0 vs s+1 can never agree).
    if ((a.is_const() && b.is_const()) ||
        (a.is_sym() && b.is_sym() && a.sym == b.sym)) {
      *error = std::string(what) + " mismatch (" + DimPair(a, b) + ")";
      return Dim::Unknown();
    }
    return Dim::Unknown();
  }
  return a.known() ? a : b;
}

// Elementwise broadcast of one dimension pair: valid iff equal or either
// side is 1; the result is the max. With one side a known constant c != 1,
// every valid execution has result c (the other side is 1 or equals c).
Dim BroadcastDim(const Dim& a, const Dim& b, const char* what,
                 std::string* error) {
  if (a == b) return a;
  if (a.is_const() && a.value == 1) return b;
  if (b.is_const() && b.value == 1) return a;
  if (a.is_const() && b.is_const()) {
    *error = std::string(what) + " not broadcastable (" + DimPair(a, b) + ")";
    return Dim::Unknown();
  }
  if (a.is_sym() && b.is_sym() && a.sym == b.sym) {
    // Same symbol, different offsets: only valid if one side is 1, which a
    // symbolic value cannot be proven to be — stay unknown, no error.
    return Dim::Unknown();
  }
  if (a.is_const()) return a;
  if (b.is_const()) return b;
  return Dim::Unknown();
}

// Broadcast join of two operand shapes under elementwise semantics.
ShapeInfo BroadcastShapes(const ShapeInfo& a, const ShapeInfo& b,
                          std::string* error) {
  if (a.is_list() || b.is_list()) return ShapeInfo::Unknown();
  if (a.is_scalar() && b.is_scalar()) return ShapeInfo::Scalar();
  if (a.is_scalar()) return b.is_matrix() ? b : ShapeInfo::Unknown();
  if (b.is_scalar()) return a.is_matrix() ? a : ShapeInfo::Unknown();
  if (a.is_matrix() && b.is_matrix()) {
    Dim rows = BroadcastDim(a.rows, b.rows, "rows", error);
    if (!error->empty()) return ShapeInfo::Unknown();
    Dim cols = BroadcastDim(a.cols, b.cols, "cols", error);
    if (!error->empty()) return ShapeInfo::Unknown();
    return ShapeInfo::Matrix(rows, cols,
                             a.sparsity > b.sparsity ? a.sparsity
                                                     : b.sparsity);
  }
  // At least one side fully unknown: the result kind is unknowable (scalar
  // op scalar stays scalar, matrix op scalar is a matrix, ...).
  return ShapeInfo::Unknown();
}

ShapeRuleResult EwiseBinaryRule(const OpcodeEffect& effect,
                                const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  const ShapeInfo& b = ArgShape(args, 1);
  // Scalar constant folding feeds inferred loop bounds and datagen sizes:
  // +/- run full affine Dim arithmetic (nrow(X) - 1 stays symbolic).
  if (a.is_scalar() && b.is_scalar()) {
    std::string_view op = effect.opcode;
    const Dim va = args.size() > 0 ? args[0].AsDim() : Dim::Unknown();
    const Dim vb = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
    if (op == "+") return Out(ShapeInfo::ScalarValue(AddDims(va, vb)));
    if (op == "-") return Out(ShapeInfo::ScalarValue(SubDims(va, vb)));
    if (va.is_const() && vb.is_const()) {
      if (op == "*") {
        return Out(ShapeInfo::ScalarConst(va.value * vb.value));
      }
      if (op == "%/%" && vb.value != 0) {
        return Out(ShapeInfo::ScalarConst(va.value / vb.value));
      }
      if (op == "%%" && vb.value != 0) {
        return Out(ShapeInfo::ScalarConst(va.value % vb.value));
      }
      if (op == "min") {
        return Out(ShapeInfo::ScalarConst(std::min(va.value, vb.value)));
      }
      if (op == "max") {
        return Out(ShapeInfo::ScalarConst(std::max(va.value, vb.value)));
      }
    }
    return Out(ShapeInfo::Scalar());
  }
  std::string error;
  ShapeInfo out = BroadcastShapes(a, b, &error);
  if (!error.empty()) {
    return ShapeError(std::string(effect.opcode) + ": " + error);
  }
  return Out(out);
}

// Cellwise ternary / fused cellwise chain: output is the broadcast of all
// matrix/scalar operands.
ShapeRuleResult CellwiseFoldRule(const OpcodeEffect& effect,
                                 const std::vector<ShapeArg>& args) {
  ShapeInfo out = ShapeInfo::Scalar();
  for (const ShapeArg& arg : args) {
    std::string error;
    out = BroadcastShapes(out, arg.shape, &error);
    if (!error.empty()) {
      return ShapeError(std::string(effect.opcode) + ": " + error);
    }
  }
  return Out(out);
}

ShapeRuleResult EwiseUnaryRule(const OpcodeEffect& effect,
                               const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  if (a.is_scalar()) {
    std::string_view op = effect.opcode;
    Dim v = args.empty() ? Dim::Unknown() : args[0].AsDim();
    if (op == "uminus") return Out(ShapeInfo::ScalarValue(SubDims(Dim::Const(0), v)));
    if ((op == "round" || op == "floor" || op == "ceil" || op == "abs") &&
        v.known()) {
      // Integral quantities are fixed by round/floor/ceil; abs only when
      // provably nonnegative.
      if (op != "abs" || (v.is_const() && v.value >= 0)) {
        return Out(ShapeInfo::ScalarValue(v));
      }
    }
    return Out(ShapeInfo::Scalar());
  }
  if (a.is_matrix()) {
    double sp = effect.opcode[0] == 'e' || effect.opcode[0] == 's'
                    ? 1.0  // exp/sigmoid/sqrt densify zero cells (exp(0)=1)
                    : a.sparsity;
    return Out(ShapeInfo::Matrix(a.rows, a.cols, sp));
  }
  return Out(ShapeInfo::Unknown());
}

ShapeRuleResult AggregateRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  std::string_view op = effect.opcode;
  bool col_agg = op.rfind("col", 0) == 0;   // (1, cols)
  bool row_agg = op.rfind("row", 0) == 0;   // (rows, 1)
  if (!col_agg && !row_agg) {
    return Out(ShapeInfo::Scalar());  // full aggregate
  }
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  if (col_agg) return Out(ShapeInfo::Matrix(Dim::Const(1), a.cols));
  return Out(ShapeInfo::Matrix(a.rows, Dim::Const(1)));
}

ShapeRuleResult MatMulRule(const OpcodeEffect& effect,
                           const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  const ShapeInfo& b = ArgShape(args, 1);
  (void)effect;
  if (!a.is_matrix() || !b.is_matrix()) {
    if (a.is_scalar() || b.is_scalar()) {
      return ShapeError("mm: operands must be matrices");
    }
    return Out(ShapeInfo::Unknown());
  }
  std::string error;
  MergeEqualDims(a.cols, b.rows, "mm: inner dimensions", &error);
  if (!error.empty()) return ShapeError(error);
  return Out(ShapeInfo::Matrix(a.rows, b.cols));
}

ShapeRuleResult TsmmRule(const OpcodeEffect& effect,
                         const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  return Out(ShapeInfo::Matrix(a.cols, a.cols));  // t(X) %*% X
}

ShapeRuleResult TmmRule(const OpcodeEffect& effect,
                        const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  return Out(ShapeInfo::Matrix(a.rows, a.rows));  // X %*% t(X)
}

ShapeRuleResult SolveRule(const OpcodeEffect& effect,
                          const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  const ShapeInfo& b = ArgShape(args, 1);
  (void)effect;
  if (!a.is_matrix() || !b.is_matrix()) return Out(ShapeInfo::Unknown());
  std::string error;
  MergeEqualDims(a.rows, a.cols, "solve: coefficient matrix not square",
                 &error);
  if (error.empty()) {
    MergeEqualDims(a.rows, b.rows, "solve: rhs rows", &error);
  }
  if (!error.empty()) return ShapeError(error);
  return Out(ShapeInfo::Matrix(a.cols, b.cols));
}

ShapeRuleResult CholeskyRule(const OpcodeEffect& effect,
                             const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  std::string error;
  Dim n = MergeEqualDims(a.rows, a.cols, "cholesky: matrix not square",
                         &error);
  if (!error.empty()) return ShapeError(error);
  return Out(ShapeInfo::Matrix(n, n));
}

ShapeRuleResult EigenRule(const OpcodeEffect& effect,
                          const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  ShapeRuleResult r;
  if (!a.is_matrix()) {
    r.outputs = {ShapeInfo::Unknown(), ShapeInfo::Unknown()};
    return r;
  }
  std::string error;
  Dim n = MergeEqualDims(a.rows, a.cols, "eigen: matrix not square", &error);
  if (!error.empty()) return ShapeError(error);
  r.outputs = {ShapeInfo::Matrix(n, Dim::Const(1)),   // eigenvalues
               ShapeInfo::Matrix(n, n)};              // eigenvectors
  return r;
}

ShapeRuleResult TsmmCbindRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  const ShapeInfo& b = ArgShape(args, 1);
  (void)effect;
  if (!a.is_matrix() || !b.is_matrix()) return Out(ShapeInfo::Unknown());
  std::string error;
  MergeEqualDims(a.rows, b.rows, "tsmm_cbind: rows", &error);
  if (!error.empty()) return ShapeError(error);
  Dim k = AddDims(a.cols, b.cols);
  return Out(ShapeInfo::Matrix(k, k));
}

ShapeRuleResult TransposeRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  if (a.is_scalar()) return Out(ShapeInfo::Scalar());
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  return Out(ShapeInfo::Matrix(a.cols, a.rows, a.sparsity));
}

ShapeRuleResult SameShapeRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  (void)effect;
  return Out(ArgShape(args, 0));
}

ShapeRuleResult DiagRule(const OpcodeEffect& effect,
                         const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  (void)effect;
  if (!a.is_matrix()) return Out(ShapeInfo::Unknown());
  // Column vector -> diagonal matrix; square matrix -> diagonal column.
  if (a.cols.is_const() && a.cols.value == 1) {
    double sp = a.rows.is_const() && a.rows.value > 0
                    ? 1.0 / static_cast<double>(a.rows.value)
                    : 1.0;
    return Out(ShapeInfo::Matrix(a.rows, a.rows, sp));
  }
  std::string error;
  Dim n = MergeEqualDims(a.rows, a.cols, "diag: matrix not square", &error);
  if (!error.empty()) return ShapeError(error);
  if (n.known() && a.cols == a.rows) {
    return Out(ShapeInfo::Matrix(n, Dim::Const(1)));
  }
  // Could be either form (unknown cols may be 1) — only the kind is known.
  return Out(ShapeInfo::Matrix(Dim::Unknown(), Dim::Unknown()));
}

ShapeRuleResult ReshapeRule(const OpcodeEffect& effect,
                            const std::vector<ShapeArg>& args) {
  (void)effect;
  const ShapeInfo& a = ArgShape(args, 0);
  Dim rows = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  Dim cols = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  if (a.is_matrix() && a.rows.is_const() && a.cols.is_const() &&
      rows.is_const() && cols.is_const() &&
      a.rows.value * a.cols.value != rows.value * cols.value) {
    return ShapeError("reshape: element count mismatch (" +
                      std::to_string(a.rows.value * a.cols.value) + " vs " +
                      std::to_string(rows.value * cols.value) + ")");
  }
  return Out(ShapeInfo::Matrix(rows, cols, a.is_matrix() ? a.sparsity : 1.0));
}

ShapeRuleResult AppendRule(const OpcodeEffect& effect,
                           const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  const ShapeInfo& b = ArgShape(args, 1);
  bool cbind = std::string_view(effect.opcode) == "cbind";
  if (!a.is_matrix() || !b.is_matrix()) return Out(ShapeInfo::Unknown());
  std::string error;
  if (cbind) {
    Dim rows = MergeEqualDims(a.rows, b.rows, "cbind: rows", &error);
    if (!error.empty()) return ShapeError(error);
    return Out(ShapeInfo::Matrix(rows, AddDims(a.cols, b.cols)));
  }
  Dim cols = MergeEqualDims(a.cols, b.cols, "rbind: cols", &error);
  if (!error.empty()) return ShapeError(error);
  return Out(ShapeInfo::Matrix(AddDims(a.rows, b.rows), cols));
}

// X[rl:ru, cl:cu] -> (ru - rl + 1, cu - cl + 1); affine Dim arithmetic
// keeps X[2:nrow(X), ] symbolic.
ShapeRuleResult RightIndexRule(const OpcodeEffect& effect,
                               const std::vector<ShapeArg>& args) {
  (void)effect;
  Dim rl = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  Dim ru = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  Dim cl = args.size() > 3 ? args[3].AsDim() : Dim::Unknown();
  Dim cu = args.size() > 4 ? args[4].AsDim() : Dim::Unknown();
  const ShapeInfo& x = ArgShape(args, 0);
  if (x.is_matrix()) {
    if (x.rows.is_const() && ru.is_const() && ru.value > x.rows.value) {
      return ShapeError("rightindex: row upper bound " +
                        std::to_string(ru.value) + " exceeds nrow " +
                        std::to_string(x.rows.value));
    }
    if (x.cols.is_const() && cu.is_const() && cu.value > x.cols.value) {
      return ShapeError("rightindex: col upper bound " +
                        std::to_string(cu.value) + " exceeds ncol " +
                        std::to_string(x.cols.value));
    }
  }
  Dim rows = AddDims(SubDims(ru, rl), Dim::Const(1));
  Dim cols = AddDims(SubDims(cu, cl), Dim::Const(1));
  double sp = x.is_matrix() ? x.sparsity : 1.0;
  return Out(ShapeInfo::Matrix(rows, cols, sp));
}

// out = X with X[rl:ru, cl:cu] = Y: the result has X's shape.
ShapeRuleResult LeftIndexRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  (void)effect;
  const ShapeInfo& x = ArgShape(args, 0);
  const ShapeInfo& y = ArgShape(args, 1);
  Dim rl = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  Dim ru = args.size() > 3 ? args[3].AsDim() : Dim::Unknown();
  Dim cl = args.size() > 4 ? args[4].AsDim() : Dim::Unknown();
  Dim cu = args.size() > 5 ? args[5].AsDim() : Dim::Unknown();
  if (y.is_matrix()) {
    Dim want_rows = AddDims(SubDims(ru, rl), Dim::Const(1));
    Dim want_cols = AddDims(SubDims(cu, cl), Dim::Const(1));
    std::string error;
    MergeEqualDims(want_rows, y.rows, "leftindex: range rows", &error);
    if (error.empty()) {
      MergeEqualDims(want_cols, y.cols, "leftindex: range cols", &error);
    }
    if (!error.empty()) return ShapeError(error);
  }
  if (!x.is_matrix()) return Out(ShapeInfo::Unknown());
  // An update densifies conservatively.
  return Out(ShapeInfo::Matrix(x.rows, x.cols));
}

ShapeRuleResult SelectRule(const OpcodeEffect& effect,
                           const std::vector<ShapeArg>& args) {
  const ShapeInfo& x = ArgShape(args, 0);
  const ShapeInfo& idx = ArgShape(args, 1);
  bool columns = std::string_view(effect.opcode) == "selcols";
  if (!x.is_matrix()) return Out(ShapeInfo::Unknown());
  // Scalar index selects one row/col; a column vector of indices selects
  // one per entry.
  Dim count = Dim::Unknown();
  if (idx.is_scalar() || (args.size() > 1 && args[1].has_number)) {
    count = Dim::Const(1);
  } else if (idx.is_matrix() && idx.cols.is_const() && idx.cols.value == 1) {
    count = idx.rows;
  }
  if (columns) return Out(ShapeInfo::Matrix(x.rows, count, x.sparsity));
  return Out(ShapeInfo::Matrix(count, x.cols, x.sparsity));
}

ShapeRuleResult TableRule(const OpcodeEffect& effect,
                          const std::vector<ShapeArg>& args) {
  (void)effect;
  Dim rows = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  Dim cols = args.size() > 3 ? args[3].AsDim() : Dim::Unknown();
  return Out(ShapeInfo::Matrix(rows, cols));
}

ShapeRuleResult OrderRule(const OpcodeEffect& effect,
                          const std::vector<ShapeArg>& args) {
  (void)effect;
  const ShapeInfo& v = ArgShape(args, 0);
  if (!v.is_matrix()) return Out(ShapeInfo::Unknown());
  if (v.cols.is_const() && v.cols.value != 1) {
    return ShapeError("order: input must be a column vector, got " +
                      v.cols.ToString() + " columns");
  }
  return Out(ShapeInfo::Matrix(v.rows, Dim::Const(1)));
}

ShapeRuleResult MetaScalarRule(const OpcodeEffect& effect,
                               const std::vector<ShapeArg>& args) {
  const ShapeInfo& a = ArgShape(args, 0);
  std::string_view op = effect.opcode;
  if (op == "nrow") {
    if (a.is_matrix()) return Out(ShapeInfo::ScalarValue(a.rows));
    if (a.is_scalar()) return Out(ShapeInfo::ScalarConst(1));
  } else if (op == "ncol") {
    if (a.is_matrix()) return Out(ShapeInfo::ScalarValue(a.cols));
    if (a.is_scalar()) return Out(ShapeInfo::ScalarConst(1));
  } else if (op == "length") {
    if (a.is_matrix()) {
      if (a.rows.is_const() && a.cols.is_const()) {
        return Out(ShapeInfo::ScalarConst(a.rows.value * a.cols.value));
      }
      if (a.cols.is_const() && a.cols.value == 1) {
        return Out(ShapeInfo::ScalarValue(a.rows));
      }
      if (a.rows.is_const() && a.rows.value == 1) {
        return Out(ShapeInfo::ScalarValue(a.cols));
      }
    }
    if (a.is_scalar()) return Out(ShapeInfo::ScalarConst(1));
  }
  return Out(ShapeInfo::Scalar());
}

ShapeRuleResult CastToScalarRule(const OpcodeEffect& effect,
                                 const std::vector<ShapeArg>& args) {
  (void)effect;
  const ShapeInfo& a = ArgShape(args, 0);
  if (a.is_matrix()) {
    std::string error;
    MergeEqualDims(a.rows, Dim::Const(1), "castdts: rows", &error);
    if (error.empty()) {
      MergeEqualDims(a.cols, Dim::Const(1), "castdts: cols", &error);
    }
    if (!error.empty()) return ShapeError(error);
  }
  return Out(ShapeInfo::Scalar());
}

ShapeRuleResult CastToMatrixRule(const OpcodeEffect& effect,
                                 const std::vector<ShapeArg>& args) {
  (void)effect;
  (void)args;
  return Out(ShapeInfo::Matrix(Dim::Const(1), Dim::Const(1)));
}

ShapeRuleResult ScalarResultRule(const OpcodeEffect& effect,
                                 const std::vector<ShapeArg>& args) {
  (void)effect;
  (void)args;
  return Out(ShapeInfo::Scalar());
}

ShapeRuleResult RandRule(const OpcodeEffect& effect,
                         const std::vector<ShapeArg>& args) {
  (void)effect;
  // rand(rows, cols, min, max, sparsity, pdf, seed)
  Dim rows = args.size() > 0 ? args[0].AsDim() : Dim::Unknown();
  Dim cols = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  return Out(ShapeInfo::Matrix(rows, cols));
}

ShapeRuleResult SampleRule(const OpcodeEffect& effect,
                           const std::vector<ShapeArg>& args) {
  (void)effect;
  // sample(range, size, seed) -> (size, 1)
  Dim size = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  return Out(ShapeInfo::Matrix(size, Dim::Const(1)));
}

ShapeRuleResult SeqRule(const OpcodeEffect& effect,
                        const std::vector<ShapeArg>& args) {
  (void)effect;
  Dim from = args.size() > 0 ? args[0].AsDim() : Dim::Unknown();
  Dim to = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  Dim incr = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  Dim rows = Dim::Unknown();
  if (from.is_const() && to.is_const() && incr.is_const()) {
    if (incr.value == 0 || (to.value - from.value) * incr.value < 0) {
      return ShapeError("seq: invalid range (" + std::to_string(from.value) +
                        ":" + std::to_string(to.value) + " by " +
                        std::to_string(incr.value) + ")");
    }
    rows = Dim::Const((to.value - from.value) / incr.value + 1);
  } else if (incr.is_const() && incr.value == 1) {
    rows = AddDims(SubDims(to, from), Dim::Const(1));
  }
  return Out(ShapeInfo::Matrix(rows, Dim::Const(1)));
}

ShapeRuleResult FillRule(const OpcodeEffect& effect,
                         const std::vector<ShapeArg>& args) {
  (void)effect;
  // fill(value, rows, cols) — matrix(v, rows=, cols=)
  Dim rows = args.size() > 1 ? args[1].AsDim() : Dim::Unknown();
  Dim cols = args.size() > 2 ? args[2].AsDim() : Dim::Unknown();
  double sp = args.size() > 0 && args[0].has_number && args[0].number == 0
                  ? 0.0
                  : 1.0;
  return Out(ShapeInfo::Matrix(rows, cols, sp));
}

ShapeRuleResult ListRule(const OpcodeEffect& effect,
                         const std::vector<ShapeArg>& args) {
  (void)effect;
  (void)args;
  return Out(ShapeInfo::List());
}

ShapeRuleResult ListIndexRule(const OpcodeEffect& effect,
                              const std::vector<ShapeArg>& args) {
  (void)effect;
  (void)args;
  // Element shapes are not tracked per-slot; the kind is unknown.
  return Out(ShapeInfo::Unknown());
}

ShapeRuleResult ReadFileRule(const OpcodeEffect& effect,
                             const std::vector<ShapeArg>& args) {
  (void)effect;
  (void)args;
  // The inference engine seeds literal read() paths from the file header
  // (PeekMatrixDims) before consulting this fallback.
  return Out(ShapeInfo::Matrix(Dim::Unknown(), Dim::Unknown()));
}

void AttachShapeRules(std::vector<OpcodeEffect>* ops) {
  static const std::unordered_map<std::string_view, ShapeRuleFn> kRules = {
      {"+", EwiseBinaryRule},     {"-", EwiseBinaryRule},
      {"*", EwiseBinaryRule},     {"/", EwiseBinaryRule},
      {"^", EwiseBinaryRule},     {"min", EwiseBinaryRule},
      {"max", EwiseBinaryRule},   {"==", EwiseBinaryRule},
      {"!=", EwiseBinaryRule},    {"<", EwiseBinaryRule},
      {">", EwiseBinaryRule},     {"<=", EwiseBinaryRule},
      {">=", EwiseBinaryRule},    {"&", EwiseBinaryRule},
      {"|", EwiseBinaryRule},     {"%%", EwiseBinaryRule},
      {"%/%", EwiseBinaryRule},   {"ifelse", CellwiseFoldRule},
      {"fused", CellwiseFoldRule},
      {"exp", EwiseUnaryRule},    {"log", EwiseUnaryRule},
      {"sqrt", EwiseUnaryRule},   {"abs", EwiseUnaryRule},
      {"round", EwiseUnaryRule},  {"floor", EwiseUnaryRule},
      {"ceil", EwiseUnaryRule},   {"sign", EwiseUnaryRule},
      {"uminus", EwiseUnaryRule}, {"!", EwiseUnaryRule},
      {"sigmoid", EwiseUnaryRule},
      {"sum", AggregateRule},     {"mean", AggregateRule},
      {"ua_min", AggregateRule},  {"ua_max", AggregateRule},
      {"trace", AggregateRule},   {"colSums", AggregateRule},
      {"colMeans", AggregateRule},{"colMins", AggregateRule},
      {"colMaxs", AggregateRule}, {"colVars", AggregateRule},
      {"rowSums", AggregateRule}, {"rowMeans", AggregateRule},
      {"rowMins", AggregateRule}, {"rowMaxs", AggregateRule},
      {"rowIndexMax", AggregateRule},
      {"mm", MatMulRule},         {"tsmm", TsmmRule},
      {"tmm", TmmRule},           {"solve", SolveRule},
      {"cholesky", CholeskyRule}, {"eigen", EigenRule},
      {"tsmm_cbind", TsmmCbindRule},
      {"t", TransposeRule},       {"rev", SameShapeRule},
      {"diag", DiagRule},         {"reshape", ReshapeRule},
      {"cbind", AppendRule},      {"rbind", AppendRule},
      {"rightindex", RightIndexRule}, {"leftindex", LeftIndexRule},
      {"selcols", SelectRule},    {"selrows", SelectRule},
      {"table", TableRule},       {"order", OrderRule},
      {"nrow", MetaScalarRule},   {"ncol", MetaScalarRule},
      {"length", MetaScalarRule}, {"castdts", CastToScalarRule},
      {"castsdm", CastToMatrixRule}, {"toString", ScalarResultRule},
      {"rand", RandRule},         {"sample", SampleRule},
      {"seq", SeqRule},           {"fill", FillRule},
      {"list", ListRule},         {"listidx", ListIndexRule},
      {"readfile", ReadFileRule}, {"lineageof", ScalarResultRule},
  };
  for (OpcodeEffect& effect : *ops) {
    auto it = kRules.find(effect.opcode);
    if (it != kRules.end()) effect.shape_rule = it->second;
  }
}

// Builders keep the table below readable; every field deviation from the
// category default is spelled out at the entry.
OpcodeEffect Compute(const char* op, int inputs, bool reusable,
                     int outputs = 1) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kCompute;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.num_outputs = outputs;
  e.reusable = reusable;
  return e;
}

OpcodeEffect DataGen(const char* op, int inputs, bool deterministic) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kDataGen;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.deterministic = deterministic;
  return e;
}

OpcodeEffect Bookkeeping(const char* op, int inputs, int outputs,
                         bool frees_inputs) {
  OpcodeEffect e;
  e.opcode = op;
  e.category = Cat::kBookkeeping;
  e.min_inputs = inputs;
  e.max_inputs = inputs;
  e.num_outputs = outputs;
  e.frees_inputs = frees_inputs;
  return e;
}

std::vector<OpcodeEffect> BuildRegistry() {
  std::vector<OpcodeEffect> ops;

  // --- Elementwise binary (BinaryOpName) -------------------------------
  for (const char* op : {"+", "-", "*", "/", "^", "min", "max", "==", "!=",
                         "<", ">", "<=", ">=", "&", "|", "%%", "%/%"}) {
    ops.push_back(Compute(op, 2, /*reusable=*/true));
  }
  // Cell-wise ternary; counted with the binaries in the default reusable
  // set (Sec. 4.1).
  ops.push_back(Compute("ifelse", 3, /*reusable=*/true));

  // --- Elementwise unary (UnaryOpName) ---------------------------------
  for (const char* op : {"exp", "log", "sqrt", "abs", "round", "floor",
                         "ceil", "sign", "uminus", "!", "sigmoid"}) {
    ops.push_back(Compute(op, 1, /*reusable=*/true));
  }

  // --- Aggregates ------------------------------------------------------
  for (const char* op :
       {"sum", "mean", "ua_min", "ua_max", "trace", "colSums", "colMeans",
        "colMins", "colMaxs", "colVars", "rowSums", "rowMeans", "rowMins",
        "rowMaxs", "rowIndexMax"}) {
    ops.push_back(Compute(op, 1, /*reusable=*/true));
  }

  // --- Matrix multiplications and factorizations -----------------------
  ops.push_back(Compute("mm", 2, /*reusable=*/true));
  ops.push_back(Compute("tsmm", 1, /*reusable=*/true));
  // Legacy SystemDS opcode (X %*% t(X)) kept in the reusable set for
  // lineage-log compatibility; replayable via the instruction factory even
  // though no current compiler rewrite emits it.
  ops.push_back(Compute("tmm", 1, /*reusable=*/true));
  ops.push_back(Compute("solve", 2, /*reusable=*/true));
  ops.push_back(Compute("cholesky", 1, /*reusable=*/true));
  ops.push_back(Compute("eigen", 1, /*reusable=*/true, /*outputs=*/2));
  {
    // Traces as tsmm(cbind(A, B)) — never as a "tsmm_cbind" lineage node.
    OpcodeEffect tsmm_cbind = Compute("tsmm_cbind", 2, /*reusable=*/true);
    tsmm_cbind.lineage_transparent = true;
    ops.push_back(tsmm_cbind);
  }

  // --- Reorganizations and indexing ------------------------------------
  ops.push_back(Compute("t", 1, /*reusable=*/true));
  ops.push_back(Compute("rev", 1, /*reusable=*/true));
  ops.push_back(Compute("diag", 1, /*reusable=*/true));
  ops.push_back(Compute("reshape", 3, /*reusable=*/true));
  ops.push_back(Compute("cbind", 2, /*reusable=*/true));
  ops.push_back(Compute("rbind", 2, /*reusable=*/true));
  ops.push_back(Compute("rightindex", 5, /*reusable=*/true));
  ops.push_back(Compute("leftindex", 6, /*reusable=*/true));
  ops.push_back(Compute("selcols", 2, /*reusable=*/true));
  ops.push_back(Compute("selrows", 2, /*reusable=*/true));
  ops.push_back(Compute("table", 4, /*reusable=*/true));
  ops.push_back(Compute("order", 3, /*reusable=*/true));

  // --- Fused operators (Sec. 3.3): variadic operands, one output -------
  {
    OpcodeEffect fused = Compute("fused", -1, /*reusable=*/true);
    fused.min_inputs = 1;
    fused.max_inputs = -1;
    // Traces as the per-step unfused items — never as a "fused" node.
    fused.lineage_transparent = true;
    ops.push_back(fused);
  }

  // --- Non-reusable compute: metadata, casts, rendering ----------------
  ops.push_back(Compute("nrow", 1, /*reusable=*/false));
  ops.push_back(Compute("ncol", 1, /*reusable=*/false));
  ops.push_back(Compute("length", 1, /*reusable=*/false));
  ops.push_back(Compute("castdts", 1, /*reusable=*/false));
  ops.push_back(Compute("castsdm", 1, /*reusable=*/false));
  ops.push_back(Compute("toString", 1, /*reusable=*/false));

  // --- Data generators -------------------------------------------------
  // rand/sample may draw a system seed (seed operand -1); instances with a
  // literal seed refine this via Instruction::IsDeterministic.
  ops.push_back(DataGen("rand", 7, /*deterministic=*/false));
  ops.push_back(DataGen("sample", 3, /*deterministic=*/false));
  ops.push_back(DataGen("seq", 3, /*deterministic=*/true));
  ops.push_back(DataGen("fill", 3, /*deterministic=*/true));

  // --- Lists -----------------------------------------------------------
  {
    OpcodeEffect list;
    list.opcode = "list";
    list.category = Cat::kData;
    list.min_inputs = 0;
    list.max_inputs = -1;
    ops.push_back(list);
  }
  {
    OpcodeEffect listidx;
    listidx.opcode = "listidx";
    listidx.category = Cat::kData;
    listidx.min_inputs = 2;
    listidx.max_inputs = 2;
    ops.push_back(listidx);
  }

  // --- Variable bookkeeping --------------------------------------------
  ops.push_back(Bookkeeping("assignvar", 0, 1, /*frees_inputs=*/false));
  ops.push_back(Bookkeeping("cpvar", 1, 1, /*frees_inputs=*/false));
  ops.push_back(Bookkeeping("mvvar", 1, 1, /*frees_inputs=*/true));
  {
    OpcodeEffect rmvar = Bookkeeping("rmvar", -1, 0, /*frees_inputs=*/true);
    rmvar.min_inputs = 1;
    rmvar.max_inputs = -1;
    ops.push_back(rmvar);
  }

  // --- Function invocation ---------------------------------------------
  {
    OpcodeEffect fcall;
    fcall.opcode = "fcall";
    fcall.category = Cat::kCall;
    fcall.min_inputs = 0;
    fcall.max_inputs = -1;
    fcall.num_outputs = -1;
    ops.push_back(fcall);
  }
  {
    OpcodeEffect eval;
    eval.opcode = "eval";
    eval.category = Cat::kCall;
    eval.min_inputs = 2;
    eval.max_inputs = 2;
    eval.num_outputs = 1;
    // The callee is a runtime value; the determinism fixpoint cannot
    // resolve it, so eval is conservatively nondeterministic.
    eval.deterministic = false;
    eval.dynamic_dispatch = true;
    ops.push_back(eval);
  }

  // --- I/O --------------------------------------------------------------
  {
    OpcodeEffect read;
    read.opcode = "readfile";
    read.category = Cat::kIo;
    read.min_inputs = 1;
    read.max_inputs = 1;
    // Files are immutable (Sec. 3.4): reads are pure given the path.
    ops.push_back(read);
  }
  {
    OpcodeEffect write;
    write.opcode = "write";
    write.category = Cat::kIo;
    write.min_inputs = 2;
    write.max_inputs = 2;
    write.num_outputs = 0;
    write.lineage_traced = false;
    write.side_effects = true;
    ops.push_back(write);
  }

  // --- Diagnostics ------------------------------------------------------
  {
    OpcodeEffect print;
    print.opcode = "print";
    print.category = Cat::kDiagnostic;
    print.min_inputs = 1;
    print.max_inputs = 1;
    print.num_outputs = 0;
    print.lineage_traced = false;
    print.side_effects = true;
    ops.push_back(print);
  }
  {
    OpcodeEffect stop;
    stop.opcode = "stop";
    stop.category = Cat::kDiagnostic;
    stop.min_inputs = 1;
    stop.max_inputs = 1;
    stop.num_outputs = 0;
    stop.lineage_traced = false;
    stop.side_effects = true;
    ops.push_back(stop);
  }
  {
    OpcodeEffect lineageof;
    lineageof.opcode = "lineageof";
    lineageof.category = Cat::kDiagnostic;
    lineageof.min_inputs = 1;
    lineageof.max_inputs = 1;
    ops.push_back(lineageof);
  }

  AttachShapeRules(&ops);
  return ops;
}

const std::unordered_map<std::string_view, const OpcodeEffect*>& Index() {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string_view, const OpcodeEffect*>;
    for (const OpcodeEffect& effect : AllOpcodeEffects()) {
      (*map)[effect.opcode] = &effect;
    }
    return map;
  }();
  return *index;
}

/// The process-wide intern table. Catalog opcodes are interned eagerly at
/// construction (so catalog opcode i always has id i); everything else is
/// added on demand under the lock. Name storage is a deque: growth never
/// invalidates references to existing strings, so OpcodeName can hand out
/// stable `const std::string&`.
struct InternTable {
  InternTable() {
    for (const OpcodeEffect& effect : AllOpcodeEffects()) {
      names.emplace_back(effect.opcode);
      index.emplace(names.back(), static_cast<int32_t>(names.size()) - 1);
    }
    num_catalog = static_cast<int32_t>(names.size());
  }

  mutable std::shared_mutex mutex;
  std::unordered_map<std::string_view, int32_t> index;  ///< keys into `names`
  std::deque<std::string> names;
  int32_t num_catalog = 0;
};

InternTable& Interns() {
  static auto* table = new InternTable();
  return *table;
}

}  // namespace

OpcodeId InternOpcode(std::string_view name) {
  InternTable& table = Interns();
  {
    std::shared_lock<std::shared_mutex> lock(table.mutex);
    auto it = table.index.find(name);
    if (it != table.index.end()) return OpcodeId(it->second);
  }
  std::unique_lock<std::shared_mutex> lock(table.mutex);
  auto it = table.index.find(name);
  if (it != table.index.end()) return OpcodeId(it->second);
  table.names.emplace_back(name);
  int32_t id = static_cast<int32_t>(table.names.size()) - 1;
  table.index.emplace(table.names.back(), id);
  return OpcodeId(id);
}

const std::string& OpcodeName(OpcodeId id) {
  InternTable& table = Interns();
  // Catalog names are immutable after construction — no lock needed.
  if (id.value() >= 0 && id.value() < table.num_catalog) {
    return table.names[id.value()];
  }
  std::shared_lock<std::shared_mutex> lock(table.mutex);
  LIMA_CHECK(id.value() >= 0 &&
             id.value() < static_cast<int32_t>(table.names.size()))
      << "OpcodeName of uninterned id " << id.value();
  // Safe to return after unlock: deque growth does not move elements and
  // interned names are never mutated.
  return table.names[id.value()];
}

int32_t NumCatalogOpcodes() { return Interns().num_catalog; }

const OpcodeEffect* LookupOpcode(OpcodeId id) {
  if (!id.valid()) return nullptr;
  const std::vector<OpcodeEffect>& effects = AllOpcodeEffects();
  if (id.value() >= static_cast<int32_t>(effects.size())) return nullptr;
  return &effects[id.value()];
}

bool IsReusableOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->reusable;
}

bool IsDeterministicOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->deterministic;
}

bool IsFunctionCallOpcode(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect != nullptr && effect->category == Cat::kCall;
}

bool HasSideEffects(OpcodeId id) {
  const OpcodeEffect* effect = LookupOpcode(id);
  return effect == nullptr || effect->side_effects;
}

const char* OpcodeCategoryName(OpcodeCategory category) {
  switch (category) {
    case Cat::kCompute:
      return "compute";
    case Cat::kDataGen:
      return "datagen";
    case Cat::kBookkeeping:
      return "bookkeeping";
    case Cat::kCall:
      return "call";
    case Cat::kData:
      return "data";
    case Cat::kIo:
      return "io";
    case Cat::kDiagnostic:
      return "diagnostic";
  }
  return "unknown";
}

const std::vector<OpcodeEffect>& AllOpcodeEffects() {
  static const auto* registry = new std::vector<OpcodeEffect>(BuildRegistry());
  return *registry;
}

const OpcodeEffect* LookupOpcode(std::string_view opcode) {
  const auto& index = Index();
  auto it = index.find(opcode);
  return it == index.end() ? nullptr : it->second;
}

bool IsRegisteredOpcode(std::string_view opcode) {
  return LookupOpcode(opcode) != nullptr;
}

bool IsReusableOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->reusable;
}

bool IsDeterministicOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->deterministic;
}

bool IsFunctionCallOpcode(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  return effect != nullptr && effect->category == Cat::kCall;
}

bool HasSideEffects(std::string_view opcode) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  // Unknown opcodes are treated as side-effecting: analyses must stay
  // conservative for anything outside the registry.
  return effect == nullptr || effect->side_effects;
}

std::vector<std::string> VerifyOpcodeEffects(
    const std::vector<OpcodeEffect>& effects) {
  std::vector<std::string> violations;
  auto report = [&violations](const OpcodeEffect& effect, const char* what) {
    violations.push_back(std::string("opcode '") + effect.opcode + "' " +
                         what);
  };
  for (const OpcodeEffect& effect : effects) {
    if (effect.reusable && !effect.deterministic) {
      report(effect, "is reusable but not deterministic");
    }
    if (effect.reusable && !effect.lineage_traced) {
      report(effect, "is reusable but not lineage-traced");
    }
    if (effect.category == Cat::kCompute && effect.num_outputs != 0 &&
        !effect.lineage_traced) {
      report(effect, "is a compute op without lineage tracing");
    }
    if (effect.frees_inputs && effect.category != Cat::kBookkeeping) {
      report(effect, "frees inputs outside the bookkeeping category");
    }
    if (effect.max_inputs != -1 && effect.min_inputs > effect.max_inputs) {
      report(effect, "has min_inputs > max_inputs");
    }
  }
  return violations;
}

std::vector<std::string> VerifyOpcodeRegistry() {
  return VerifyOpcodeEffects(AllOpcodeEffects());
}

std::vector<std::string> VerifyShapeRuleCoverage() {
  std::vector<std::string> missing;
  for (const OpcodeEffect& effect : AllOpcodeEffects()) {
    if (effect.category == Cat::kCall ||
        effect.category == Cat::kBookkeeping) {
      continue;  // handled natively by the inference engine
    }
    if (effect.num_outputs == 0) continue;  // produces no values
    if (effect.shape_rule == nullptr) {
      missing.push_back(std::string("opcode '") + effect.opcode +
                        "' has no shape-transfer rule");
    }
  }
  return missing;
}

}  // namespace lima
