#include "analysis/parfor_dependency.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/opcode_registry.h"
#include "runtime/instructions_misc.h"

namespace lima {
namespace {

// ---------------------------------------------------------------------------
// Multivariate integer polynomials.
//
// Subscript expressions are lowered to polynomials over the parfor loop
// variable, the active inner-loop variables, and loop-invariant scalar
// symbols. A monomial is the sorted multiset of its variable names; the
// zero polynomial is the empty term map. Integer coefficients are exact —
// any overflow or blow-up aborts the lowering and the access degrades to
// "unknown subscript" (conservative).
// ---------------------------------------------------------------------------

using Monomial = std::vector<std::string>;

struct Poly {
  std::map<Monomial, int64_t> terms;

  bool IsZero() const { return terms.empty(); }

  std::optional<int64_t> AsConst() const {
    if (terms.empty()) return 0;
    if (terms.size() == 1 && terms.begin()->first.empty()) {
      return terms.begin()->second;
    }
    return std::nullopt;
  }

  bool operator==(const Poly& other) const { return terms == other.terms; }

  bool ContainsVar(const std::string& var) const {
    for (const auto& [mono, coeff] : terms) {
      (void)coeff;
      if (std::find(mono.begin(), mono.end(), var) != mono.end()) return true;
    }
    return false;
  }
};

constexpr int kMaxTerms = 48;

Poly PolyConst(int64_t value) {
  Poly p;
  if (value != 0) p.terms[{}] = value;
  return p;
}

Poly PolyVar(const std::string& name) {
  Poly p;
  p.terms[{name}] = 1;
  return p;
}

bool AddInto(Poly* out, const Monomial& mono, int64_t coeff) {
  if (coeff == 0) return true;
  int64_t& slot = out->terms[mono];
  // Saturating-style overflow guard: fall back to "unknown" on overflow.
  if ((coeff > 0 && slot > std::numeric_limits<int64_t>::max() - coeff) ||
      (coeff < 0 && slot < std::numeric_limits<int64_t>::min() - coeff)) {
    return false;
  }
  slot += coeff;
  if (slot == 0) out->terms.erase(mono);
  return out->terms.size() <= kMaxTerms;
}

std::optional<Poly> PolyAdd(const Poly& a, const Poly& b) {
  Poly out = a;
  for (const auto& [mono, coeff] : b.terms) {
    if (!AddInto(&out, mono, coeff)) return std::nullopt;
  }
  return out;
}

Poly PolyNeg(const Poly& a) {
  Poly out;
  for (const auto& [mono, coeff] : a.terms) out.terms[mono] = -coeff;
  return out;
}

std::optional<Poly> PolySub(const Poly& a, const Poly& b) {
  return PolyAdd(a, PolyNeg(b));
}

std::optional<Poly> PolyMul(const Poly& a, const Poly& b) {
  Poly out;
  for (const auto& [ma, ca] : a.terms) {
    for (const auto& [mb, cb] : b.terms) {
      if (ca != 0 && std::abs(cb) >
                         std::numeric_limits<int64_t>::max() / std::abs(ca)) {
        return std::nullopt;
      }
      Monomial mono = ma;
      mono.insert(mono.end(), mb.begin(), mb.end());
      std::sort(mono.begin(), mono.end());
      if (mono.size() > 4) return std::nullopt;  // degree guard
      if (!AddInto(&out, mono, ca * cb)) return std::nullopt;
    }
  }
  return out;
}

/// Splits `p` as `A*var + B` requiring degree(var) <= 1; nullopt otherwise.
std::optional<std::pair<Poly, Poly>> SplitLinear(const Poly& p,
                                                const std::string& var) {
  Poly a;
  Poly b;
  for (const auto& [mono, coeff] : p.terms) {
    const auto count = std::count(mono.begin(), mono.end(), var);
    if (count == 0) {
      b.terms[mono] = coeff;
    } else if (count == 1) {
      Monomial rest;
      bool removed = false;
      for (const auto& name : mono) {
        if (!removed && name == var) {
          removed = true;
          continue;
        }
        rest.push_back(name);
      }
      a.terms[rest] = coeff;
    } else {
      return std::nullopt;
    }
  }
  return std::make_pair(std::move(a), std::move(b));
}

using FactSet = std::set<std::string>;  // variables/symbols known >= 1

/// Conservative proof of `p >= bound` under the ">= 1" facts: every
/// non-constant monomial needs a nonnegative coefficient and only fact'd
/// variables (each such monomial is then >= 1), giving the lower bound
/// constant + sum of non-constant coefficients.
bool PolyAtLeast(const Poly& p, int64_t bound, const FactSet& facts) {
  int64_t lower = 0;
  for (const auto& [mono, coeff] : p.terms) {
    if (mono.empty()) {
      lower += coeff;
      continue;
    }
    if (coeff < 0) return false;
    for (const auto& name : mono) {
      if (facts.count(name) == 0) return false;
    }
    lower += coeff;  // monomial >= 1
  }
  return lower >= bound;
}

bool PolyNonneg(const Poly& p, const FactSet& facts) {
  return PolyAtLeast(p, 0, facts);
}

bool PolyNonpos(const Poly& p, const FactSet& facts) {
  return PolyAtLeast(PolyNeg(p), 0, facts);
}

std::string PolyToString(const Poly& p) {
  if (p.terms.empty()) return "0";
  std::ostringstream out;
  bool first = true;
  for (const auto& [mono, coeff] : p.terms) {
    if (!first) out << (coeff < 0 ? " - " : " + ");
    if (first && coeff < 0) out << "-";
    first = false;
    const int64_t mag = std::abs(coeff);
    if (mono.empty()) {
      out << mag;
      continue;
    }
    if (mag != 1) out << mag << "*";
    for (size_t i = 0; i < mono.size(); ++i) {
      if (i > 0) out << "*";
      out << mono[i];
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Access model.
// ---------------------------------------------------------------------------

/// One active surrounding loop at an access site; bounds are nullopt when
/// they could not be lowered (the variable is then unbounded and any
/// subscript containing it fails the dependency tests).
struct LoopRange {
  std::string var;
  std::optional<Poly> lo;
  std::optional<Poly> hi;
};

enum class DimKind { kFull, kPoint, kRange, kUnknown };

struct DimAccess {
  DimKind kind = DimKind::kUnknown;
  Poly lo;
  Poly hi;
};

struct Access {
  bool is_write = false;
  std::vector<DimAccess> dims;
  int line = 0;
  std::vector<LoopRange> ranges;  ///< enclosing inner loops, outer->inner
  FactSet facts;                  ///< ">= 1" facts valid at this site
};

struct VarInfo {
  bool shared_full_read = false;
  int full_read_line = 0;
  bool shared_plain_write = false;
  int plain_write_line = 0;
  bool shared_read = false;
  int shared_read_line = 0;
  bool accum = false;
  int accum_line = 0;
  bool has_indexed_write = false;
  std::vector<Access> accesses;  ///< shared indexed reads and writes
};

void AddFinding(ParForDepInfo* info, bool blocking, std::string code,
                std::string message, int line) {
  ParForFinding finding;
  finding.blocking = blocking;
  finding.code = std::move(code);
  finding.message = std::move(message);
  finding.source_line = line;
  info->findings.push_back(std::move(finding));
}

// ---------------------------------------------------------------------------
// Dependency tests over one access pair.
// ---------------------------------------------------------------------------

enum class DimVerdict {
  kDisjoint,  ///< no two distinct iterations touch a common index
  kAlways,    ///< every pair of iterations overlaps in this dimension
  kCarried,   ///< proven cross-iteration overlap at a constant distance
  kUnknown,
};

struct DimResult {
  DimVerdict verdict = DimVerdict::kUnknown;
  int64_t distance = 0;       // for kCarried
  bool nonaffine = false;     // kUnknown because a subscript was not affine
};

/// Literal parfor bounds: iteration values are the consecutive integers of
/// [lo, hi] (EvaluateRange walks reversed ranges downward with step -1).
struct ParForBounds {
  bool literal = false;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// Minimizes (dir=-1) or maximizes (dir=+1) `p` over the access's inner
/// loop ranges, eliminating variables innermost-first. Returns nullopt when
/// a coefficient sign is undeterminable or a range is unbounded.
std::optional<Poly> ExtremizePoly(Poly p, int dir,
                                 const std::vector<LoopRange>& ranges,
                                 const FactSet& facts) {
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    if (!p.ContainsVar(it->var)) continue;
    if (!it->lo.has_value() || !it->hi.has_value()) return std::nullopt;
    auto split = SplitLinear(p, it->var);
    if (!split.has_value()) return std::nullopt;
    const Poly& a = split->first;
    const Poly& b = split->second;
    // min(a*v + b) over lo <= v <= hi: a >= 0 -> a*lo + b; a <= 0 -> a*hi+b.
    const Poly* bound = nullptr;
    if (PolyNonneg(a, facts)) {
      bound = dir < 0 ? &*it->lo : &*it->hi;
    } else if (PolyNonpos(a, facts)) {
      bound = dir < 0 ? &*it->hi : &*it->lo;
    } else {
      return std::nullopt;
    }
    auto prod = PolyMul(a, *bound);
    if (!prod.has_value()) return std::nullopt;
    auto sum = PolyAdd(*prod, b);
    if (!sum.has_value()) return std::nullopt;
    p = std::move(*sum);
  }
  return p;
}

/// The window of one dimension access as a function of the parfor variable:
/// [c*t + lo, c*t + hi] with lo/hi free of loop variables.
struct Window {
  Poly c;
  Poly lo;
  Poly hi;
};

std::optional<Window> MakeWindow(const DimAccess& dim, const Access& access,
                                 const std::string& loop_var,
                                 const FactSet& facts) {
  auto lo_min = ExtremizePoly(dim.lo, -1, access.ranges, facts);
  auto hi_max = ExtremizePoly(dim.hi, +1, access.ranges, facts);
  if (!lo_min.has_value() || !hi_max.has_value()) return std::nullopt;
  auto lo_split = SplitLinear(*lo_min, loop_var);
  auto hi_split = SplitLinear(*hi_max, loop_var);
  if (!lo_split.has_value() || !hi_split.has_value()) return std::nullopt;
  if (!(lo_split->first == hi_split->first)) return std::nullopt;
  Window w;
  w.c = lo_split->first;
  w.lo = lo_split->second;
  w.hi = hi_split->second;
  // Residuals must be invariant: reject leftover loop variables.
  for (const auto& range : access.ranges) {
    if (w.lo.ContainsVar(range.var) || w.hi.ContainsVar(range.var) ||
        w.c.ContainsVar(range.var)) {
      return std::nullopt;
    }
  }
  return w;
}

int64_t Gcd(int64_t a, int64_t b) { return std::gcd(std::abs(a), std::abs(b)); }

/// Facts both access sites may rely on together. Facts about a loop
/// variable are site-specific (two sibling loops can reuse one name with
/// different ranges), so only facts about symbols that are a loop variable
/// at *neither* site survive the merge — those are loop-invariant, and a
/// collision scenario executes both sites, establishing the fact globally.
FactSet SharedInvariantFacts(const Access& a1, const Access& a2) {
  auto is_range_var = [](const Access& a, const std::string& name) {
    for (const auto& range : a.ranges) {
      if (range.var == name) return true;
    }
    return false;
  };
  FactSet shared;
  for (const FactSet* site : {&a1.facts, &a2.facts}) {
    for (const auto& name : *site) {
      if (!is_range_var(a1, name) && !is_range_var(a2, name)) {
        shared.insert(name);
      }
    }
  }
  return shared;
}

DimResult TestDim(const DimAccess& d1, const Access& a1, const DimAccess& d2,
                  const Access& a2, const std::string& loop_var,
                  const ParForBounds& bounds, const FactSet& facts) {
  DimResult result;
  if (d1.kind == DimKind::kUnknown || d2.kind == DimKind::kUnknown) {
    result.nonaffine = true;
    return result;
  }
  if (d1.kind == DimKind::kFull || d2.kind == DimKind::kFull) {
    result.verdict = DimVerdict::kAlways;
    return result;
  }

  // Each window is extremized under its own site's facts (plus the shared
  // invariant facts in `facts`); a sibling site's loop-variable facts must
  // not leak into the other site's coefficient-sign decisions.
  FactSet f1 = facts;
  f1.insert(a1.facts.begin(), a1.facts.end());
  FactSet f2 = facts;
  f2.insert(a2.facts.begin(), a2.facts.end());
  auto w1 = MakeWindow(d1, a1, loop_var, f1);
  auto w2 = MakeWindow(d2, a2, loop_var, f2);
  if (!w1.has_value() || !w2.has_value()) return result;

  if (w1->c == w2->c) {
    const Poly& c = w1->c;
    // Gap polynomials: "gap(x, y) = cc + lo_x - hi_y" is the separation of
    // window x at iteration t+1 above window y at iteration t when windows
    // move upward by cc per step; larger |dt| only widens it when cc >= 0.
    const bool positive = PolyNonneg(c, facts);
    const Poly cc = positive ? c : PolyNeg(c);
    auto gap = [&](const Poly& lo_x, const Poly& hi_y) -> std::optional<Poly> {
      auto base = PolyAdd(cc, lo_x);
      if (!base.has_value()) return std::nullopt;
      return PolySub(*base, hi_y);
    };
    if (c.IsZero()) {
      // Constant windows: disjoint when one lies strictly above the other
      // (no iteration pair can ever collide).
      auto up = gap(w2->lo, w1->hi);
      auto dn = gap(w1->lo, w2->hi);
      if ((up.has_value() && PolyAtLeast(*up, 1, facts)) ||
          (dn.has_value() && PolyAtLeast(*dn, 1, facts))) {
        result.verdict = DimVerdict::kDisjoint;
        return result;
      }
    } else if (positive || PolyNonpos(c, facts)) {
      // Moving windows: for |dt| >= 1 the windows separate when the
      // per-step shift exceeds the combined window extent both ways. With
      // negative c the roles of "above"/"below" swap, which the shared gap
      // form already captures via cc = |c|.
      auto up = positive ? gap(w2->lo, w1->hi) : gap(w1->lo, w2->hi);
      auto dn = positive ? gap(w1->lo, w2->hi) : gap(w2->lo, w1->hi);
      if (up.has_value() && dn.has_value() && PolyAtLeast(*up, 1, facts) &&
          PolyAtLeast(*dn, 1, facts)) {
        result.verdict = DimVerdict::kDisjoint;
        return result;
      }
    }

    // Point accesses with constant linear forms a*t + b: exact distance.
    auto c_const = c.AsConst();
    if (d1.kind == DimKind::kPoint && d2.kind == DimKind::kPoint &&
        w1->lo == w1->hi && w2->lo == w2->hi && c_const.has_value()) {
      auto b1 = w1->lo.AsConst();
      auto b2 = w2->lo.AsConst();
      if (b1.has_value() && b2.has_value()) {
        const int64_t a = *c_const;
        const int64_t diff = *b2 - *b1;
        if (a == 0) {
          if (diff == 0) {
            result.verdict = DimVerdict::kAlways;  // same cell, every pair
          } else {
            result.verdict = DimVerdict::kDisjoint;
          }
          return result;
        }
        if (diff % a != 0) {
          result.verdict = DimVerdict::kDisjoint;  // non-integer distance
          return result;
        }
        // a*t1 + b1 == a*t2 + b2 collides at t2 = t1 + (b1-b2)/a.
        const int64_t dist = -diff / a;
        if (dist == 0) {
          // Accesses collide only within one iteration — independent.
          result.verdict = DimVerdict::kDisjoint;
          return result;
        }
        if (bounds.literal && std::abs(dist) <= bounds.hi - bounds.lo) {
          result.verdict = DimVerdict::kCarried;
          result.distance = dist;
        }
        return result;
      }
    }
    // Identical constant windows (c == 0) overlap at every iteration pair.
    if (c.IsZero() && w1->lo == w2->lo && w1->hi == w2->hi) {
      result.verdict = DimVerdict::kAlways;
    }
    return result;
  }

  // Differing coefficients: GCD and Banerjee tests on constant point forms
  // a1*t1 + b1 = a2*t2 + b2.
  auto c1 = w1->c.AsConst();
  auto c2 = w2->c.AsConst();
  if (d1.kind == DimKind::kPoint && d2.kind == DimKind::kPoint &&
      w1->lo == w1->hi && w2->lo == w2->hi && c1.has_value() &&
      c2.has_value()) {
    auto b1 = w1->lo.AsConst();
    auto b2 = w2->lo.AsConst();
    if (b1.has_value() && b2.has_value() && *c1 != 0 && *c2 != 0) {
      const int64_t diff = *b2 - *b1;
      const int64_t g = Gcd(*c1, *c2);
      if (g != 0 && diff % g != 0) {
        result.verdict = DimVerdict::kDisjoint;  // GCD test
        return result;
      }
      if (bounds.literal) {
        // Banerjee bounds on a1*t1 - a2*t2 over the iteration box.
        auto range_of = [&](int64_t a) {
          const int64_t x = a * bounds.lo;
          const int64_t y = a * bounds.hi;
          return std::make_pair(std::min(x, y), std::max(x, y));
        };
        auto r1 = range_of(*c1);
        auto r2 = range_of(-*c2);
        const int64_t lo = r1.first + r2.first;
        const int64_t hi = r1.second + r2.second;
        if (diff < lo || diff > hi) {
          result.verdict = DimVerdict::kDisjoint;
          return result;
        }
      }
    }
  }
  return result;
}

enum class PairVerdict { kIndependent, kDependent, kUnknown };

struct PairResult {
  PairVerdict verdict = PairVerdict::kUnknown;
  int64_t distance = 0;
  bool nonaffine = false;
};

PairResult TestPair(const Access& a1, const Access& a2,
                    const std::string& loop_var, const ParForBounds& bounds) {
  PairResult result;
  if (a1.dims.empty() || a1.dims.size() != a2.dims.size()) return result;
  const FactSet facts = SharedInvariantFacts(a1, a2);

  std::vector<DimResult> dims;
  dims.reserve(a1.dims.size());
  for (size_t d = 0; d < a1.dims.size(); ++d) {
    DimResult r = TestDim(a1.dims[d], a1, a2.dims[d], a2, loop_var, bounds,
                          facts);
    if (r.verdict == DimVerdict::kDisjoint) {
      result.verdict = PairVerdict::kIndependent;
      return result;
    }
    result.nonaffine = result.nonaffine || r.nonaffine;
    dims.push_back(r);
  }

  // Dependence is only claimed when the per-dimension facts compose to a
  // simultaneous solution: at most one carried dimension (fixed distance),
  // all others overlapping at every iteration pair.
  int carried = 0;
  int always = 0;
  int64_t distance = 0;
  for (const auto& r : dims) {
    if (r.verdict == DimVerdict::kCarried) {
      ++carried;
      distance = r.distance;
    } else if (r.verdict == DimVerdict::kAlways) {
      ++always;
    }
  }
  if (carried + always == static_cast<int>(dims.size())) {
    if (carried == 1) {
      result.verdict = PairVerdict::kDependent;
      result.distance = distance;
      return result;
    }
    if (carried == 0 && bounds.literal && bounds.hi > bounds.lo) {
      // Every iteration pair touches the same region and there are at
      // least two iterations: write-write/read collision proven.
      result.verdict = PairVerdict::kDependent;
      result.distance = 0;
      return result;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// AST walk: collects shared accesses and classifies written variables.
// ---------------------------------------------------------------------------

class BodyWalker {
 public:
  explicit BodyWalker(const StmtNode& parfor) : parfor_(parfor) {}
  BodyWalker(const StmtNode& parfor,
             const std::unordered_map<std::string, int64_t>* known_consts)
      : parfor_(parfor), known_consts_(known_consts) {}

  ParForDepInfo Run();

 private:
  void CollectWrites(const std::vector<StmtPtr>& stmts);
  void WalkStmts(const std::vector<StmtPtr>& stmts);
  void WalkStmt(const StmtNode& stmt);
  void WalkExprReads(const ExprNode& expr);
  void WalkDimReads(const std::vector<IndexDim>& dims);

  bool IsActiveLoopVar(const std::string& name) const;
  bool IsInvariantSymbol(const std::string& name) const;
  std::optional<Poly> ExprToPoly(const ExprNode& expr) const;
  DimAccess SubscriptToDim(const IndexDim& dim) const;
  std::vector<DimAccess> SubscriptsToDims(const std::vector<IndexDim>& dims)
      const;

  void RecordIndexedRead(const std::string& name,
                         const std::vector<IndexDim>& dims, int line);
  void RecordFullRead(const std::string& name, int line);
  void RecordIndexedWrite(const StmtNode& stmt);
  void RecordPlainWrite(const std::string& name, int line);
  void EnterLoop(const StmtNode& stmt, size_t* pushed_facts,
                 bool* pushed_range);
  void LeaveLoop(size_t pushed_facts, bool pushed_range);
  void Classify(ParForDepInfo* info);
  void TestVariable(const std::string& name, const VarInfo& vi,
                    ParForDepInfo* info);

  const StmtNode& parfor_;
  /// Loop-invariant symbols with statically proven integer values (shape
  /// inference facts); nullptr when analysis runs without a fact set.
  const std::unordered_map<std::string, int64_t>* known_consts_ = nullptr;
  std::set<std::string> assigned_;   ///< assignment targets anywhere in body
  std::set<std::string> loop_vars_;  ///< all loop variables of the body
  std::set<std::string> definite_;   ///< defined-this-iteration (path-aware)
  std::vector<LoopRange> ranges_;    ///< active inner loops, outer->inner
  std::vector<std::string> fact_stack_;
  FactSet facts_;
  std::map<std::string, VarInfo> vars_;
  ParForBounds bounds_;
  ParForDepInfo info_;
};

void BodyWalker::CollectWrites(const std::vector<StmtPtr>& stmts) {
  for (const auto& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        assigned_.insert(stmt->target);
        break;
      case StmtKind::kMultiAssign:
        for (const auto& t : stmt->targets) assigned_.insert(t);
        break;
      case StmtKind::kIf:
        CollectWrites(stmt->body);
        CollectWrites(stmt->else_body);
        break;
      case StmtKind::kFor:
        loop_vars_.insert(stmt->loop_var);
        CollectWrites(stmt->body);
        break;
      case StmtKind::kWhile:
        CollectWrites(stmt->body);
        break;
      default:
        break;
    }
  }
}

bool BodyWalker::IsActiveLoopVar(const std::string& name) const {
  if (name == parfor_.loop_var) return true;
  for (const auto& range : ranges_) {
    if (range.var == name) return true;
  }
  return false;
}

bool BodyWalker::IsInvariantSymbol(const std::string& name) const {
  return assigned_.count(name) == 0 && loop_vars_.count(name) == 0 &&
         name != parfor_.loop_var;
}

std::optional<Poly> BodyWalker::ExprToPoly(const ExprNode& expr) const {
  switch (expr.kind) {
    case ExprKind::kNumber: {
      const double v = expr.number;
      if (v != std::floor(v) || std::abs(v) > 1e15) return std::nullopt;
      return PolyConst(static_cast<int64_t>(v));
    }
    case ExprKind::kVar:
      if (IsActiveLoopVar(expr.text)) return PolyVar(expr.text);
      if (IsInvariantSymbol(expr.text)) {
        // Shape-inference fact environment: a proven integer value makes
        // the subscript concrete for the numeric dependency tests.
        if (known_consts_ != nullptr) {
          auto it = known_consts_->find(expr.text);
          if (it != known_consts_->end()) return PolyConst(it->second);
        }
        return PolyVar(expr.text);
      }
      return std::nullopt;  // body-local value: not affine in loop terms
    case ExprKind::kUnary: {
      const ExprNode* operand = expr.lhs ? expr.lhs.get() : expr.rhs.get();
      if (expr.text != "-" || operand == nullptr) return std::nullopt;
      auto p = ExprToPoly(*operand);
      if (!p.has_value()) return std::nullopt;
      return PolyNeg(*p);
    }
    case ExprKind::kBinary: {
      if (expr.lhs == nullptr || expr.rhs == nullptr) return std::nullopt;
      auto l = ExprToPoly(*expr.lhs);
      auto r = ExprToPoly(*expr.rhs);
      if (!l.has_value() || !r.has_value()) return std::nullopt;
      if (expr.text == "+") return PolyAdd(*l, *r);
      if (expr.text == "-") return PolySub(*l, *r);
      if (expr.text == "*") return PolyMul(*l, *r);
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

DimAccess BodyWalker::SubscriptToDim(const IndexDim& dim) const {
  DimAccess out;
  if (dim.is_range && dim.lower == nullptr && dim.upper == nullptr) {
    out.kind = DimKind::kFull;
    return out;
  }
  if (!dim.is_range && dim.lower != nullptr) {
    auto p = ExprToPoly(*dim.lower);
    if (p.has_value()) {
      out.kind = DimKind::kPoint;
      out.lo = *p;
      out.hi = *p;
    }
    return out;
  }
  if (dim.is_range && dim.lower != nullptr && dim.upper != nullptr) {
    auto lo = ExprToPoly(*dim.lower);
    auto hi = ExprToPoly(*dim.upper);
    if (lo.has_value() && hi.has_value()) {
      out.kind = DimKind::kRange;
      out.lo = *lo;
      out.hi = *hi;
    }
    return out;
  }
  return out;  // kUnknown
}

std::vector<DimAccess> BodyWalker::SubscriptsToDims(
    const std::vector<IndexDim>& dims) const {
  std::vector<DimAccess> out;
  out.reserve(dims.size());
  for (const auto& dim : dims) out.push_back(SubscriptToDim(dim));
  return out;
}

void BodyWalker::RecordIndexedRead(const std::string& name,
                                   const std::vector<IndexDim>& dims,
                                   int line) {
  if (definite_.count(name) > 0 || IsActiveLoopVar(name)) return;
  VarInfo& vi = vars_[name];
  vi.shared_read = true;
  if (vi.shared_read_line == 0) vi.shared_read_line = line;
  Access access;
  access.is_write = false;
  access.dims = SubscriptsToDims(dims);
  access.line = line;
  access.ranges = ranges_;
  access.facts = facts_;
  vi.accesses.push_back(std::move(access));
}

void BodyWalker::RecordFullRead(const std::string& name, int line) {
  if (definite_.count(name) > 0 || IsActiveLoopVar(name)) return;
  VarInfo& vi = vars_[name];
  vi.shared_read = true;
  if (vi.shared_read_line == 0) vi.shared_read_line = line;
  vi.shared_full_read = true;
  if (vi.full_read_line == 0) vi.full_read_line = line;
}

void BodyWalker::RecordIndexedWrite(const StmtNode& stmt) {
  const std::string& name = stmt.target;
  if (name == parfor_.loop_var || IsActiveLoopVar(name)) {
    AddFinding(&info_, /*blocking=*/false, "loop-var-write",
               "loop variable '" + name + "' is assigned inside the body",
               stmt.line);
    return;
  }
  if (definite_.count(name) > 0) return;  // iteration-private matrix
  VarInfo& vi = vars_[name];
  vi.has_indexed_write = true;
  Access access;
  access.is_write = true;
  access.dims = SubscriptsToDims(stmt.target_dims);
  access.line = stmt.line;
  access.ranges = ranges_;
  access.facts = facts_;
  vi.accesses.push_back(std::move(access));
}

void BodyWalker::RecordPlainWrite(const std::string& name, int line) {
  if (name == parfor_.loop_var || IsActiveLoopVar(name)) {
    AddFinding(&info_, /*blocking=*/false, "loop-var-write",
               "loop variable '" + name + "' is assigned inside the body",
               line);
    return;
  }
  if (definite_.count(name) == 0) {
    VarInfo& vi = vars_[name];
    vi.shared_plain_write = true;
    if (vi.plain_write_line == 0) vi.plain_write_line = line;
  }
  definite_.insert(name);
}

void BodyWalker::WalkDimReads(const std::vector<IndexDim>& dims) {
  for (const auto& dim : dims) {
    if (dim.lower != nullptr) WalkExprReads(*dim.lower);
    if (dim.upper != nullptr) WalkExprReads(*dim.upper);
  }
}

void BodyWalker::WalkExprReads(const ExprNode& expr) {
  switch (expr.kind) {
    case ExprKind::kVar:
      RecordFullRead(expr.text, expr.line);
      return;
    case ExprKind::kIndex:
      WalkDimReads(expr.dims);
      if (expr.target != nullptr && expr.target->kind == ExprKind::kVar &&
          expr.dims.size() == 2) {
        RecordIndexedRead(expr.target->text, expr.dims, expr.line);
      } else if (expr.target != nullptr) {
        WalkExprReads(*expr.target);
      }
      return;
    case ExprKind::kBinary:
    case ExprKind::kUnary:
      if (expr.lhs != nullptr) WalkExprReads(*expr.lhs);
      if (expr.rhs != nullptr) WalkExprReads(*expr.rhs);
      return;
    case ExprKind::kCall:
      for (const auto& arg : expr.args) {
        if (arg.value != nullptr) WalkExprReads(*arg.value);
      }
      return;
    default:
      return;
  }
}

void BodyWalker::EnterLoop(const StmtNode& stmt, size_t* pushed_facts,
                           bool* pushed_range) {
  *pushed_facts = 0;
  *pushed_range = false;

  // A loop variable that is also an ordinary assignment target escapes the
  // range model; leave it unbounded (conservative).
  const bool clean_var = assigned_.count(stmt.loop_var) == 0;

  std::optional<Poly> from;
  std::optional<Poly> to;
  if (stmt.from != nullptr) from = ExprToPoly(*stmt.from);
  if (stmt.to != nullptr) to = ExprToPoly(*stmt.to);
  const bool simple_step = stmt.step == nullptr;

  auto push_fact = [&](const std::string& name) {
    if (facts_.insert(name).second) {
      fact_stack_.push_back(name);
      ++*pushed_facts;
    }
  };

  // Invariant upper-bound fact under the forward-range assumption: the body
  // only executes after at least one iteration started, so to >= from >= 1
  // when the range runs forward (see docs/ANALYSIS.md).
  if (simple_step && from.has_value() && PolyAtLeast(*from, 1, facts_) &&
      to.has_value() && to->terms.size() == 1) {
    const auto& [mono, coeff] = *to->terms.begin();
    if (mono.size() == 1 && coeff == 1 && IsInvariantSymbol(mono[0])) {
      push_fact(mono[0]);
    }
  }

  // Range direction. EvaluateRange walks from..to *downward* when
  // from > to ('for (j in n:1)' runs n..1, not zero iterations), so a
  // symbolic range is only usable as a value hull once its direction is
  // provable under the active facts; otherwise the variable stays unbounded
  // and subscripts containing it degrade to unknown (serialize).
  enum class Dir { kUnknown, kForward, kReversed };
  Dir dir = Dir::kUnknown;
  if (simple_step && from.has_value() && to.has_value()) {
    auto fwd = PolySub(*to, *from);
    auto rev = PolySub(*from, *to);
    if (fwd.has_value() && PolyNonneg(*fwd, facts_)) {
      dir = Dir::kForward;
    } else if (rev.has_value() && PolyNonneg(*rev, facts_)) {
      dir = Dir::kReversed;
    }
  }

  // Loop-variable ">= 1" fact: the smallest iterate is the lower end of
  // the value hull — `from` forward (also the assumed direction while
  // unproven), but `to` on a proven-downward range.
  if (clean_var && simple_step) {
    const std::optional<Poly>& min_end = dir == Dir::kReversed ? to : from;
    if (min_end.has_value() && PolyAtLeast(*min_end, 1, facts_)) {
      push_fact(stmt.loop_var);
    }
  }

  if (clean_var) {
    LoopRange range;
    range.var = stmt.loop_var;
    if (dir == Dir::kForward) {
      range.lo = from;
      range.hi = to;
    } else if (dir == Dir::kReversed) {
      range.lo = to;
      range.hi = from;
    }
    ranges_.push_back(std::move(range));
    *pushed_range = true;
  }
}

void BodyWalker::LeaveLoop(size_t pushed_facts, bool pushed_range) {
  for (size_t i = 0; i < pushed_facts; ++i) {
    facts_.erase(fact_stack_.back());
    fact_stack_.pop_back();
  }
  if (pushed_range) ranges_.pop_back();
}

bool ExprReadsVar(const ExprNode& expr, const std::string& name) {
  switch (expr.kind) {
    case ExprKind::kVar:
      return expr.text == name;
    case ExprKind::kIndex:
      if (expr.target != nullptr && ExprReadsVar(*expr.target, name)) {
        return true;
      }
      for (const auto& dim : expr.dims) {
        if (dim.lower != nullptr && ExprReadsVar(*dim.lower, name)) {
          return true;
        }
        if (dim.upper != nullptr && ExprReadsVar(*dim.upper, name)) {
          return true;
        }
      }
      return false;
    case ExprKind::kBinary:
    case ExprKind::kUnary:
      return (expr.lhs != nullptr && ExprReadsVar(*expr.lhs, name)) ||
             (expr.rhs != nullptr && ExprReadsVar(*expr.rhs, name));
    case ExprKind::kCall:
      for (const auto& arg : expr.args) {
        if (arg.value != nullptr && ExprReadsVar(*arg.value, name)) {
          return true;
        }
      }
      return false;
    default:
      return false;
  }
}

void BodyWalker::WalkStmt(const StmtNode& stmt) {
  switch (stmt.kind) {
    case StmtKind::kAssign: {
      if (stmt.value != nullptr) WalkExprReads(*stmt.value);
      if (!stmt.target_dims.empty()) {
        WalkDimReads(stmt.target_dims);
        RecordIndexedWrite(stmt);
        return;
      }
      // Scalar accumulation: s = f(s, ...) against the pre-iteration value.
      if (definite_.count(stmt.target) == 0 && stmt.value != nullptr &&
          !IsActiveLoopVar(stmt.target) &&
          ExprReadsVar(*stmt.value, stmt.target)) {
        VarInfo& vi = vars_[stmt.target];
        vi.accum = true;
        if (vi.accum_line == 0) vi.accum_line = stmt.line;
      }
      RecordPlainWrite(stmt.target, stmt.line);
      return;
    }
    case StmtKind::kMultiAssign:
      if (stmt.value != nullptr) WalkExprReads(*stmt.value);
      for (const auto& target : stmt.targets) {
        RecordPlainWrite(target, stmt.line);
      }
      return;
    case StmtKind::kIf: {
      if (stmt.condition != nullptr) WalkExprReads(*stmt.condition);
      const std::set<std::string> before = definite_;
      WalkStmts(stmt.body);
      std::set<std::string> after_then = definite_;
      definite_ = before;
      WalkStmts(stmt.else_body);
      // Definite after the if = defined on both paths.
      std::set<std::string> merged;
      for (const auto& name : after_then) {
        if (definite_.count(name) > 0) merged.insert(name);
      }
      definite_ = std::move(merged);
      return;
    }
    case StmtKind::kFor: {  // inner for / nested parfor
      if (stmt.from != nullptr) WalkExprReads(*stmt.from);
      if (stmt.to != nullptr) WalkExprReads(*stmt.to);
      if (stmt.step != nullptr) WalkExprReads(*stmt.step);
      size_t pushed_facts = 0;
      bool pushed_range = false;
      EnterLoop(stmt, &pushed_facts, &pushed_range);
      const std::set<std::string> before = definite_;
      definite_.insert(stmt.loop_var);
      WalkStmts(stmt.body);
      definite_ = before;  // the loop may run zero iterations
      LeaveLoop(pushed_facts, pushed_range);
      return;
    }
    case StmtKind::kWhile: {
      if (stmt.condition != nullptr) WalkExprReads(*stmt.condition);
      const std::set<std::string> before = definite_;
      WalkStmts(stmt.body);
      definite_ = before;
      return;
    }
    case StmtKind::kExprStmt:
      if (stmt.value != nullptr) WalkExprReads(*stmt.value);
      return;
    case StmtKind::kFuncDef:
      return;  // compiled separately; does not touch loop state
  }
}

void BodyWalker::WalkStmts(const std::vector<StmtPtr>& stmts) {
  for (const auto& stmt : stmts) WalkStmt(*stmt);
}

void BodyWalker::TestVariable(const std::string& name, const VarInfo& vi,
                              ParForDepInfo* info) {
  const auto& accesses = vi.accesses;
  for (size_t i = 0; i < accesses.size(); ++i) {
    for (size_t j = i; j < accesses.size(); ++j) {
      const Access& a = accesses[i];
      const Access& b = accesses[j];
      if (!a.is_write && !b.is_write) continue;
      if (i == j && !a.is_write) continue;
      PairResult r = TestPair(a, b, parfor_.loop_var, bounds_);
      if (r.verdict == PairVerdict::kIndependent) continue;
      std::ostringstream msg;
      msg << "result '" << name << "': ";
      const char* kind_a = a.is_write ? "write" : "read";
      const char* kind_b = b.is_write ? "write" : "read";
      if (r.verdict == PairVerdict::kDependent) {
        msg << "cross-iteration dependence between " << kind_a << " at line "
            << a.line << " and " << kind_b << " at line " << b.line;
        if (r.distance != 0) msg << " (distance " << r.distance << ")";
        AddFinding(info, /*blocking=*/true, "carried-dependence", msg.str(),
                   a.line);
      } else {
        msg << "cannot prove " << kind_a << " at line " << a.line
            << " independent of " << kind_b << " at line " << b.line;
        if (r.nonaffine) msg << " (subscript not affine in the loop variable)";
        AddFinding(info, /*blocking=*/false, "possible-dependence", msg.str(),
                   a.line);
      }
    }
  }
}

void BodyWalker::Classify(ParForDepInfo* info) {
  for (const auto& [name, vi] : vars_) {
    if (vi.has_indexed_write) {
      if (vi.shared_plain_write) {
        AddFinding(info, /*blocking=*/false, "mixed-write",
                   "result '" + name +
                       "' is both indexed-written and whole-assigned in the "
                       "body",
                   vi.plain_write_line);
      }
      if (vi.shared_full_read) {
        AddFinding(info, /*blocking=*/false, "whole-read",
                   "result '" + name + "' is read whole at line " +
                       std::to_string(vi.full_read_line) +
                       " while iterations write slices of it",
                   vi.full_read_line);
      }
      TestVariable(name, vi, info);
      continue;
    }
    if (!vi.shared_plain_write) continue;  // pure input
    if (vi.accum) {
      AddFinding(info, /*blocking=*/false, "scalar-accumulation",
                 "shared variable '" + name +
                     "' is accumulated across iterations (" + name + " = ... " +
                     name + " ... at line " + std::to_string(vi.accum_line) +
                     ")",
                 vi.accum_line);
      continue;
    }
    if (vi.shared_read) {
      AddFinding(info, /*blocking=*/false, "read-overwritten",
                 "shared variable '" + name + "' is read at line " +
                     std::to_string(vi.shared_read_line) +
                     " before its per-iteration definition and overwritten "
                     "at line " +
                     std::to_string(vi.plain_write_line),
                 vi.shared_read_line);
      continue;
    }
    // Unread whole-variable overwrite: no finding — the loop may stay
    // parallel — but the merge must take the last writer wholesale (workers
    // merge in ascending chunk order, so last writer == highest iteration
    // that wrote == the sequential outcome). The cell-wise diff used for
    // sliced results would let an earlier worker's value survive whenever
    // the last write restores a cell's initial value, so annotate the
    // variable for ParForBlock's result merge.
    info->plain_overwrites.push_back(name);
  }
}

ParForDepInfo BodyWalker::Run() {
  info_.analyzed = true;
  CollectWrites(parfor_.body);

  // Literal parfor bounds enable the Banerjee test and exact trip counts.
  if (parfor_.from != nullptr && parfor_.to != nullptr &&
      parfor_.step == nullptr) {
    auto from = ExprToPoly(*parfor_.from);
    auto to = ExprToPoly(*parfor_.to);
    if (from.has_value() && to.has_value()) {
      auto fc = from->AsConst();
      auto tc = to->AsConst();
      if (fc.has_value() && tc.has_value()) {
        bounds_.literal = true;
        bounds_.lo = std::min(*fc, *tc);
        bounds_.hi = std::max(*fc, *tc);
      }
      // Base facts from the parfor header itself.
      if (fc.has_value() && *fc >= 1) {
        facts_.insert(parfor_.loop_var);
        if (to->terms.size() == 1) {
          const auto& [mono, coeff] = *to->terms.begin();
          if (mono.size() == 1 && coeff == 1 && IsInvariantSymbol(mono[0])) {
            facts_.insert(mono[0]);
          }
        }
      }
    }
  }

  definite_.insert(parfor_.loop_var);
  WalkStmts(parfor_.body);
  Classify(&info_);

  info_.verdict = ParForSafety::kSafe;
  for (const auto& finding : info_.findings) {
    if (finding.blocking) {
      info_.verdict = ParForSafety::kReject;
      break;
    }
    info_.verdict = ParForSafety::kSerialize;
  }
  return std::move(info_);
}

// ---------------------------------------------------------------------------
// Phase 2: instruction-level nondeterminism scan.
// ---------------------------------------------------------------------------

void ScanInstructions(const Program& program, const BasicBlock& block,
                      ParForDepInfo* info, std::set<std::string>* seen) {
  for (const auto& instruction : block.instructions()) {
    const std::string& opcode = instruction->opcode();
    if (!instruction->IsDeterministic()) {
      if (seen->insert("op:" + opcode).second) {
        AddFinding(info, /*blocking=*/false, "nondet-op",
                   "nondeterministic operation '" + opcode +
                       "' without a literal seed inside the parallel body",
                   instruction->source_line());
      }
      continue;
    }
    const OpcodeEffect* effect = LookupOpcode(opcode);
    if (effect != nullptr && effect->dynamic_dispatch) {
      if (seen->insert("dyn:" + opcode).second) {
        AddFinding(info, /*blocking=*/false, "nondet-call",
                   "dynamically dispatched call ('" + opcode +
                       "') inside the parallel body defeats the static "
                       "determinism analysis",
                   instruction->source_line());
      }
      continue;
    }
    if (opcode == "fcall") {
      const auto* call =
          static_cast<const FunctionCallInstruction*>(instruction.get());
      const Function* fn = program.GetFunction(call->function_name());
      if (fn != nullptr && !fn->deterministic() &&
          seen->insert("fn:" + call->function_name()).second) {
        AddFinding(info, /*blocking=*/false, "nondet-call",
                   "call to nondeterministic function '" +
                       call->function_name() + "' inside the parallel body",
                   instruction->source_line());
      }
    }
  }
}

void ScanBlockTree(const Program& program, const ProgramBlock& block,
                   ParForDepInfo* info, std::set<std::string>* seen);

void ScanBlockList(const Program& program, const std::vector<BlockPtr>& blocks,
                   ParForDepInfo* info, std::set<std::string>* seen) {
  for (const auto& block : blocks) {
    ScanBlockTree(program, *block, info, seen);
  }
}

void ScanBlockTree(const Program& program, const ProgramBlock& block,
                   ParForDepInfo* info, std::set<std::string>* seen) {
  switch (block.kind()) {
    case BlockKind::kBasic:
      ScanInstructions(program, static_cast<const BasicBlock&>(block), info,
                       seen);
      return;
    case BlockKind::kIf: {
      const auto& if_block = static_cast<const IfBlock&>(block);
      ScanInstructions(program, if_block.predicate().block(), info, seen);
      ScanBlockList(program, if_block.then_blocks(), info, seen);
      ScanBlockList(program, if_block.else_blocks(), info, seen);
      return;
    }
    case BlockKind::kFor:
    case BlockKind::kParFor: {
      const auto& for_block = static_cast<const ForBlock&>(block);
      ScanInstructions(program, for_block.from().block(), info, seen);
      ScanInstructions(program, for_block.to().block(), info, seen);
      ScanInstructions(program, for_block.incr().block(), info, seen);
      ScanBlockList(program, for_block.body(), info, seen);
      return;
    }
    case BlockKind::kWhile: {
      const auto& while_block = static_cast<const WhileBlock&>(block);
      ScanInstructions(program, while_block.predicate().block(), info, seen);
      ScanBlockList(program, while_block.body(), info, seen);
      return;
    }
  }
}

void FinalizeBlockList(Program* program, std::vector<BlockPtr>* blocks);

void FinalizeBlock(Program* program, ProgramBlock* block) {
  switch (block->kind()) {
    case BlockKind::kBasic:
      return;
    case BlockKind::kIf: {
      auto* if_block = static_cast<IfBlock*>(block);
      FinalizeBlockList(program, if_block->mutable_then_blocks());
      FinalizeBlockList(program, if_block->mutable_else_blocks());
      return;
    }
    case BlockKind::kParFor: {
      auto* parfor = static_cast<ParForBlock*>(block);
      ParForDepInfo* info = parfor->mutable_dep_info();
      if (info->analyzed) {
        std::set<std::string> seen;
        ScanBlockList(*program, parfor->body(), info, &seen);
        info->verdict = ParForSafety::kSafe;
        for (const auto& finding : info->findings) {
          if (finding.blocking) {
            info->verdict = ParForSafety::kReject;
            break;
          }
          info->verdict = ParForSafety::kSerialize;
        }
      }
      FinalizeBlockList(program, parfor->mutable_body());
      return;
    }
    case BlockKind::kFor: {
      auto* for_block = static_cast<ForBlock*>(block);
      FinalizeBlockList(program, for_block->mutable_body());
      return;
    }
    case BlockKind::kWhile: {
      auto* while_block = static_cast<WhileBlock*>(block);
      FinalizeBlockList(program, while_block->mutable_body());
      return;
    }
  }
}

void FinalizeBlockList(Program* program, std::vector<BlockPtr>* blocks) {
  for (auto& block : *blocks) FinalizeBlock(program, block.get());
}

void CollectFromList(const std::vector<BlockPtr>& blocks,
                     const std::string& function, const std::string& path,
                     std::vector<ParForBlockRef>* out);

void CollectFromBlock(const ProgramBlock& block, const std::string& function,
                      const std::string& path,
                      std::vector<ParForBlockRef>* out) {
  switch (block.kind()) {
    case BlockKind::kBasic:
      return;
    case BlockKind::kIf: {
      const auto& if_block = static_cast<const IfBlock&>(block);
      CollectFromList(if_block.then_blocks(), function, path + "/then", out);
      CollectFromList(if_block.else_blocks(), function, path + "/else", out);
      return;
    }
    case BlockKind::kParFor: {
      const auto& parfor = static_cast<const ParForBlock&>(block);
      ParForBlockRef ref;
      ref.block = &parfor;
      ref.function = function;
      ref.location = path;
      out->push_back(ref);
      CollectFromList(parfor.body(), function, path + "/body", out);
      return;
    }
    case BlockKind::kFor: {
      const auto& for_block = static_cast<const ForBlock&>(block);
      CollectFromList(for_block.body(), function, path + "/body", out);
      return;
    }
    case BlockKind::kWhile: {
      const auto& while_block = static_cast<const WhileBlock&>(block);
      CollectFromList(while_block.body(), function, path + "/body", out);
      return;
    }
  }
}

void CollectFromList(const std::vector<BlockPtr>& blocks,
                     const std::string& function, const std::string& path,
                     std::vector<ParForBlockRef>* out) {
  for (size_t i = 0; i < blocks.size(); ++i) {
    CollectFromBlock(*blocks[i], function,
                     path + "/block[" + std::to_string(i) + "]", out);
  }
}

}  // namespace

ParForDepInfo AnalyzeParForStatement(const StmtNode& stmt) {
  BodyWalker walker(stmt);
  return walker.Run();
}

ParForDepInfo AnalyzeParForStatement(
    const StmtNode& stmt,
    const std::unordered_map<std::string, int64_t>& known_consts) {
  BodyWalker walker(stmt, &known_consts);
  return walker.Run();
}

void FinalizeParForAnalysis(Program* program) {
  std::vector<std::string> names;
  names.reserve(program->functions().size());
  for (const auto& [name, fn] : program->functions()) {
    (void)fn;
    names.push_back(name);
  }
  for (const auto& name : names) {
    Function* fn = program->GetMutableFunction(name);
    if (fn != nullptr) FinalizeBlockList(program, fn->mutable_body());
  }
  FinalizeBlockList(program, program->mutable_main());
}

std::vector<ParForBlockRef> CollectParForBlocks(const Program& program) {
  std::vector<ParForBlockRef> out;
  std::vector<std::string> names;
  for (const auto& [name, fn] : program.functions()) {
    (void)fn;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    CollectFromList(program.GetFunction(name)->body(), name, name, &out);
  }
  CollectFromList(program.main(), "main", "main", &out);
  return out;
}

}  // namespace lima
