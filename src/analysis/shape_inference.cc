#include "analysis/shape_inference.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "analysis/opcode_registry.h"
#include "matrix/matrix_io.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

using Env = std::unordered_map<std::string, ShapeInfo>;

/// Least upper bound over environments: keys present in only one side (a
/// variable defined on one path only) widen to Unknown; keys absent from
/// both stay absent.
Env JoinEnvs(const Env& a, const Env& b) {
  Env out;
  for (const auto& [name, shape] : a) {
    auto it = b.find(name);
    out[name] = it == b.end() ? ShapeInfo::Unknown()
                              : JoinShape(shape, it->second);
  }
  for (const auto& [name, shape] : b) {
    if (a.find(name) == a.end()) out[name] = ShapeInfo::Unknown();
  }
  return out;
}

bool EnvsEqual(const Env& a, const Env& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, shape] : a) {
    auto it = b.find(name);
    if (it == b.end() || it->second != shape) return false;
  }
  return true;
}

/// Integral literal value, accepting integer-valued doubles (the compiler
/// inlines numeric literals as doubles in several positions).
bool LiteralAsInt(const ScalarValue& v, int64_t* out) {
  switch (v.kind()) {
    case ScalarKind::kInt:
    case ScalarKind::kBool:
      *out = v.AsInt();
      return true;
    case ScalarKind::kDouble: {
      double d = v.AsDouble();
      if (std::floor(d) == d && std::fabs(d) < 9.0e15) {
        *out = static_cast<int64_t>(d);
        return true;
      }
      return false;
    }
    case ScalarKind::kString:
      return false;
  }
  return false;
}

std::string HumanBytes(int64_t bytes) {
  char buf[48];
  if (bytes >= int64_t{1} << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (int64_t{1} << 30));
  } else if (bytes >= int64_t{1} << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (int64_t{1} << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B",
                  static_cast<long long>(bytes));
  }
  return buf;
}

const char* BlockKindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kBasic:
      return "basic";
    case BlockKind::kIf:
      return "if";
    case BlockKind::kFor:
      return "for";
    case BlockKind::kWhile:
      return "while";
    case BlockKind::kParFor:
      return "parfor";
  }
  return "block";
}

/// Loop fixpoint pass cap; the dimension lattice has height 2 and symbols
/// are minted per instruction, so real programs converge in 2-4 passes.
constexpr int kMaxLoopPasses = 16;
constexpr int kMaxCallDepth = 16;

class ShapeEngine {
 public:
  explicit ShapeEngine(const Program& program) : program_(program) {}

  ShapeAnalysis Run(const std::vector<ShapeAssumption>& assumptions) {
    Env env;
    for (const ShapeAssumption& a : assumptions) env[a.name] = a.shape;
    ProcessTopLevel(program_.main(), &env);
    analysis_.final_shapes = env;
    analysis_.peak_bytes = peak_bytes_;
    analysis_.exact = exact_;
    for (const auto& [instr, known] : known_) {
      (void)instr;
      ++analysis_.num_instructions;
      if (known) ++analysis_.num_fully_known;
    }
    return std::move(analysis_);
  }

 private:
  // --- environment / memory observation ---------------------------------

  /// Dense payload bytes of all matrix bindings; unknown-shape matrices
  /// contribute 0 and taint exactness.
  int64_t EnvBytes(const Env& env, bool* taint) {
    int64_t total = 0;
    for (const auto& [name, shape] : env) {
      (void)name;
      if (shape.is_matrix()) {
        if (shape.fully_known()) {
          total += shape.MatrixBytes();
        } else {
          *taint = true;
        }
      } else if (shape.is_unknown() || shape.is_list()) {
        *taint = true;  // could be a matrix of unknown size
      }
    }
    return total;
  }

  void Observe(const Env& env) {
    bool taint = false;
    int64_t bytes = base_bytes_ + EnvBytes(env, &taint);
    if (taint) {
      exact_ = false;
      block_exact_ = false;
    }
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
    if (bytes > block_peak_) block_peak_ = bytes;
  }

  // --- diagnostics ------------------------------------------------------

  void Diag(Diagnostic::Severity severity, std::string code,
            std::string message, const std::string& scope,
            const std::string& location, int line) {
    std::string key = code + "|" + scope + "|" + std::to_string(line) + "|" +
                      message;
    if (!reported_.insert(key).second) return;
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.message = std::move(message);
    d.function = scope;
    d.location = location;
    d.source_line = line;
    analysis_.diagnostics.push_back(std::move(d));
  }

  // --- symbolic dimensions ----------------------------------------------

  /// Mints a symbol for an unknown output dimension, memoized per
  /// (instruction, output, dimension) so repeated visits (loop fixpoint
  /// passes, multiple call sites) agree and widening terminates.
  Dim StableSym(const void* instr, int output, int which) {
    auto key = std::make_tuple(instr, output, which);
    auto it = sym_memo_.find(key);
    if (it == sym_memo_.end()) {
      it = sym_memo_.emplace(key, next_sym_++).first;
    }
    return Dim::Sym(it->second);
  }

  ShapeInfo MintSyms(const void* instr, int output, ShapeInfo shape) {
    if (!shape.is_matrix()) return shape;
    if (!shape.rows.known()) shape.rows = StableSym(instr, output, 0);
    if (!shape.cols.known()) shape.cols = StableSym(instr, output, 1);
    return shape;
  }

  // --- instruction application ------------------------------------------

  ShapeArg BuildArg(const Operand& op, const Env& env) {
    ShapeArg arg;
    if (op.is_literal) {
      arg.is_literal = true;
      if (op.literal.is_string()) {
        arg.has_text = true;
        arg.text = op.literal.AsString();
        arg.shape = ShapeInfo::Scalar();
      } else {
        int64_t value = 0;
        if (LiteralAsInt(op.literal, &value)) {
          arg.has_number = true;
          arg.number = value;
          arg.shape = ShapeInfo::ScalarConst(value);
        } else {
          arg.shape = ShapeInfo::Scalar();
        }
      }
      return arg;
    }
    auto it = env.find(op.name);
    arg.shape = it == env.end() ? ShapeInfo::Unknown() : it->second;
    return arg;
  }

  /// Coverage notion for the known-ratio metric: the engine derived the
  /// value's kind and, for matrices, a complete dimension structure —
  /// constant or symbolic (symbolic dims still prove conformability).
  /// Constant-only sizing is tracked separately by the memory estimator.
  static bool OutputShapeKnown(const ShapeInfo& shape) {
    if (shape.is_unknown()) return false;
    if (shape.is_matrix()) return shape.rows.known() && shape.cols.known();
    return true;
  }

  /// Binds one instruction's abstract outputs, minting stable symbols for
  /// unknown matrix dimensions and updating the known-coverage metric.
  void BindOutputs(const Instruction& instr,
                   const std::vector<std::string>& names,
                   std::vector<ShapeInfo> shapes, Env* env) {
    bool all_known = true;
    for (size_t i = 0; i < names.size(); ++i) {
      ShapeInfo shape = i < shapes.size() ? shapes[i] : ShapeInfo::Unknown();
      shape = MintSyms(&instr, static_cast<int>(i), std::move(shape));
      all_known &= OutputShapeKnown(shape);
      (*env)[names[i]] = std::move(shape);
    }
    if (!names.empty()) {
      auto [it, inserted] = known_.emplace(&instr, all_known);
      if (!inserted) it->second = it->second && all_known;
    }
  }

  void ApplyInstruction(const Instruction& instr, Env* env,
                        const std::string& scope, const std::string& loc) {
    // Bookkeeping first: these manipulate the environment directly.
    if (const auto* lit = dynamic_cast<const AssignLiteralInstruction*>(
            &instr)) {
      int64_t value = 0;
      ShapeInfo shape = LiteralAsInt(lit->value(), &value)
                            ? ShapeInfo::ScalarConst(value)
                            : ShapeInfo::Scalar();
      BindOutputs(instr, instr.OutputVars(), {shape}, env);
      return;
    }
    if (const auto* var = dynamic_cast<const VariableInstruction*>(&instr)) {
      switch (var->variable_kind()) {
        case VariableInstruction::Kind::kCopy:
        case VariableInstruction::Kind::kMove: {
          const std::string& from = var->names()[0];
          const std::string& to = var->names()[1];
          auto it = env->find(from);
          ShapeInfo shape =
              it == env->end() ? ShapeInfo::Unknown() : it->second;
          if (var->variable_kind() == VariableInstruction::Kind::kMove) {
            env->erase(from);
          }
          BindOutputs(instr, {to}, {shape}, env);
          break;
        }
        case VariableInstruction::Kind::kRemove:
          for (const std::string& name : var->names()) env->erase(name);
          break;
      }
      Observe(*env);
      return;
    }
    if (const auto* read = dynamic_cast<const ReadInstruction*>(&instr)) {
      ShapeInfo shape = ShapeInfo::Matrix(Dim::Unknown(), Dim::Unknown());
      const Operand& path = read->path();
      if (path.is_literal && path.literal.is_string()) {
        Result<std::pair<int64_t, int64_t>> dims =
            PeekMatrixDims(path.literal.AsString());
        if (dims.ok()) {
          shape = ShapeInfo::Matrix(Dim::Const(dims->first),
                                    Dim::Const(dims->second));
        }
      }
      BindOutputs(instr, instr.OutputVars(), {shape}, env);
      Observe(*env);
      return;
    }
    if (const auto* call = dynamic_cast<const FunctionCallInstruction*>(
            &instr)) {
      ApplyCall(*call, env, scope, loc);
      Observe(*env);
      return;
    }
    if (const auto* comp = dynamic_cast<const ComputationInstruction*>(
            &instr)) {
      std::vector<ShapeArg> args;
      args.reserve(comp->operands().size());
      for (const Operand& op : comp->operands()) {
        args.push_back(BuildArg(op, *env));
      }
      const OpcodeEffect* effect = LookupOpcode(instr.opcode_id());
      if (effect == nullptr || effect->shape_rule == nullptr) {
        Diag(Diagnostic::Severity::kWarning, "shape-unknown-degraded",
             "no shape-transfer rule for opcode '" + instr.opcode() +
                 "'; shapes degraded to unknown",
             scope, loc, instr.source_line());
        BindOutputs(instr, instr.OutputVars(),
                    std::vector<ShapeInfo>(instr.OutputVars().size()), env);
        Observe(*env);
        return;
      }
      ShapeRuleResult result = effect->shape_rule(*effect, args);
      if (!result.error.empty()) {
        Diag(Diagnostic::Severity::kError, "shape-mismatch", result.error,
             scope, loc, instr.source_line());
        result.outputs.assign(instr.OutputVars().size(),
                              ShapeInfo::Unknown());
      }
      BindOutputs(instr, comp->OutputVars(), std::move(result.outputs), env);
      Observe(*env);
      return;
    }
    // Remaining non-computation instructions by opcode.
    const std::string& op = instr.opcode();
    if (op == "print" || op == "stop" || op == "write") return;
    if (op == "list") {
      BindOutputs(instr, instr.OutputVars(), {ShapeInfo::List()}, env);
    } else if (op == "lineageof" || op == "toString") {
      BindOutputs(instr, instr.OutputVars(), {ShapeInfo::Scalar()}, env);
    } else if (op == "eval") {
      Diag(Diagnostic::Severity::kWarning, "shape-unknown-degraded",
           "eval dispatches at runtime; result shape unknown", scope, loc,
           instr.source_line());
      BindOutputs(instr, instr.OutputVars(), {ShapeInfo::Unknown()}, env);
    } else if (op == "listidx") {
      // Per-slot shapes are not tracked through lists.
      BindOutputs(instr, instr.OutputVars(), {ShapeInfo::Unknown()}, env);
    } else if (!instr.OutputVars().empty()) {
      Diag(Diagnostic::Severity::kWarning, "shape-unknown-degraded",
           "unmodeled opcode '" + op + "'; shapes degraded to unknown",
           scope, loc, instr.source_line());
      BindOutputs(instr, instr.OutputVars(),
                  std::vector<ShapeInfo>(instr.OutputVars().size()), env);
    }
    Observe(*env);
  }

  void ApplyCall(const FunctionCallInstruction& call, Env* env,
                 const std::string& scope, const std::string& loc) {
    const Function* fn = program_.GetFunction(call.function_name());
    std::vector<std::string> outputs = call.OutputVars();
    if (fn == nullptr || active_.count(fn) > 0 ||
        call_depth_ >= kMaxCallDepth) {
      if (fn != nullptr) {
        Diag(Diagnostic::Severity::kWarning, "shape-unknown-degraded",
             "recursive call to '" + call.function_name() +
                 "'; result shapes unknown",
             scope, loc, call.source_line());
      }
      BindOutputs(call, outputs, std::vector<ShapeInfo>(outputs.size()), env);
      return;
    }
    // Bind arguments positionally; missing trailing args take defaults.
    Env callee;
    const std::vector<Function::Param>& params = fn->params();
    for (size_t i = 0; i < params.size(); ++i) {
      if (i < call.args().size()) {
        callee[params[i].name] = BuildArg(call.args()[i], *env).shape;
      } else if (params[i].has_default) {
        int64_t value = 0;
        callee[params[i].name] =
            LiteralAsInt(params[i].default_value, &value)
                ? ShapeInfo::ScalarConst(value)
                : ShapeInfo::Scalar();
      }
    }
    // The callee's live bindings stack on top of the caller's.
    bool taint = false;
    int64_t saved_base = base_bytes_;
    base_bytes_ += EnvBytes(*env, &taint);
    active_.insert(fn);
    ++call_depth_;
    ProcessBlocks(fn->body(), &callee, fn->name(), fn->name());
    --call_depth_;
    active_.erase(fn);
    base_bytes_ = saved_base;

    std::vector<ShapeInfo> result;
    result.reserve(outputs.size());
    const std::vector<std::string>& fn_outputs = fn->outputs();
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (i < fn_outputs.size()) {
        auto it = callee.find(fn_outputs[i]);
        result.push_back(it == callee.end() ? ShapeInfo::Unknown()
                                            : it->second);
      } else {
        result.push_back(ShapeInfo::Unknown());
      }
    }
    BindOutputs(call, outputs, std::move(result), env);
  }

  // --- block traversal --------------------------------------------------

  void ProcessBasic(const BasicBlock& block, Env* env,
                    const std::string& scope, const std::string& loc) {
    for (const auto& instr : block.instructions()) {
      ApplyInstruction(*instr, env, scope, loc);
    }
  }

  void ProcessPredicate(const Predicate& pred, Env* env,
                        const std::string& scope, const std::string& loc) {
    ProcessBasic(pred.block(), env, scope, loc);
  }

  /// Loop-head widening: iterate body passes, joining at the head, until
  /// the head environment stabilizes. The post-loop state is the head state
  /// (a loop may run zero iterations).
  template <typename Body>
  void FixpointLoop(Env* env, const Body& body) {
    Env head = *env;
    bool converged = false;
    for (int pass = 0; pass < kMaxLoopPasses; ++pass) {
      Env iter = head;
      body(&iter);
      Env joined = JoinEnvs(head, iter);
      if (EnvsEqual(joined, head)) {
        converged = true;
        break;
      }
      head = std::move(joined);
    }
    if (!converged) {
      for (auto& [name, shape] : head) {
        (void)name;
        shape = ShapeInfo::Unknown();
      }
      exact_ = false;
      block_exact_ = false;
    }
    *env = std::move(head);
  }

  void ProcessFor(const ForBlock& block, Env* env, const std::string& scope,
                  const std::string& loc) {
    ProcessPredicate(block.from(), env, scope, loc);
    ProcessPredicate(block.to(), env, scope, loc);
    ProcessPredicate(block.incr(), env, scope, loc);
    FixpointLoop(env, [&](Env* iter) {
      (*iter)[block.iter_var()] = ShapeInfo::Scalar();
      ProcessBlocks(block.body(), iter, scope, loc + "/body");
    });
    // The loop variable survives DML loops with its final value.
    (*env)[block.iter_var()] = ShapeInfo::Scalar();

    if (block.kind() == BlockKind::kParFor) {
      RecordParForConsts(static_cast<const ParForBlock&>(block), *env);
    }
  }

  /// Loop-invariant integer constants at the parfor head, intersected
  /// across visits (a function containing the loop may be called with
  /// different arguments).
  void RecordParForConsts(const ParForBlock& block, const Env& head) {
    std::unordered_map<std::string, int64_t> consts;
    for (const auto& [name, shape] : head) {
      if (name == block.iter_var()) continue;
      if (shape.is_scalar() && shape.value.is_const()) {
        consts[name] = shape.value.value;
      }
    }
    auto [it, inserted] =
        analysis_.parfor_consts.emplace(&block, std::move(consts));
    if (!inserted) {
      auto& kept = it->second;
      for (auto kv = kept.begin(); kv != kept.end();) {
        auto found = consts.find(kv->first);
        if (found == consts.end() || found->second != kv->second) {
          kv = kept.erase(kv);
        } else {
          ++kv;
        }
      }
    }
  }

  void ProcessBlock(const ProgramBlock& block, Env* env,
                    const std::string& scope, const std::string& loc) {
    switch (block.kind()) {
      case BlockKind::kBasic:
        ProcessBasic(static_cast<const BasicBlock&>(block), env, scope, loc);
        break;
      case BlockKind::kIf: {
        const auto& ifb = static_cast<const IfBlock&>(block);
        ProcessPredicate(ifb.predicate(), env, scope, loc);
        Env then_env = *env;
        Env else_env = *env;
        ProcessBlocks(ifb.then_blocks(), &then_env, scope, loc + "/then");
        ProcessBlocks(ifb.else_blocks(), &else_env, scope, loc + "/else");
        *env = JoinEnvs(then_env, else_env);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor:
        ProcessFor(static_cast<const ForBlock&>(block), env, scope, loc);
        break;
      case BlockKind::kWhile: {
        const auto& wb = static_cast<const WhileBlock&>(block);
        FixpointLoop(env, [&](Env* iter) {
          ProcessPredicate(wb.predicate(), iter, scope, loc);
          ProcessBlocks(wb.body(), iter, scope, loc + "/body");
        });
        // The predicate also runs on the exiting evaluation.
        ProcessPredicate(wb.predicate(), env, scope, loc);
        break;
      }
    }
  }

  void ProcessBlocks(const std::vector<BlockPtr>& blocks, Env* env,
                     const std::string& scope, const std::string& loc) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      ProcessBlock(*blocks[i], env, scope,
                   loc + "/block[" + std::to_string(i) + "]");
    }
  }

  /// Main traversal with per-top-level-block memory capture.
  void ProcessTopLevel(const std::vector<BlockPtr>& blocks, Env* env) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      block_peak_ = 0;
      block_exact_ = true;
      std::string loc = "main/block[" + std::to_string(i) + "]";
      ProcessBlock(*blocks[i], env, "main", loc);
      ShapeMemBlock mem;
      mem.location = std::move(loc);
      mem.kind = BlockKindName(blocks[i]->kind());
      mem.peak_bytes = block_peak_;
      mem.exact = block_exact_;
      analysis_.block_mem.push_back(std::move(mem));
    }
  }

  const Program& program_;
  ShapeAnalysis analysis_;

  std::map<std::tuple<const void*, int, int>, int32_t> sym_memo_;
  int32_t next_sym_ = 0;
  std::unordered_map<const Instruction*, bool> known_;
  std::set<const Function*> active_;
  std::set<std::string> reported_;
  int call_depth_ = 0;

  int64_t base_bytes_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t block_peak_ = 0;
  bool exact_ = true;
  bool block_exact_ = true;
};

}  // namespace

std::string ShapeAnalysis::MemReport() const {
  std::string out = "=== static memory estimate ===\n";
  for (const ShapeMemBlock& block : block_mem) {
    out += block.location + " (" + block.kind + "): peak " +
           HumanBytes(block.peak_bytes) +
           (block.exact ? "" : " (lower bound: unknown shapes)") + "\n";
  }
  out += "program peak: " + HumanBytes(peak_bytes) + " (" +
         std::to_string(peak_bytes) + " bytes" +
         (exact ? ", exact)" : ", lower bound: unknown shapes)") + "\n";
  char ratio[64];
  std::snprintf(ratio, sizeof(ratio),
                "shape coverage: %d/%d instructions fully shaped (%.0f%%)\n",
                num_fully_known, num_instructions, known_ratio() * 100.0);
  out += ratio;
  return out;
}

ShapeAnalysis InferShapes(const Program& program,
                          const std::vector<ShapeAssumption>& assumptions) {
  return ShapeEngine(program).Run(assumptions);
}

ShapeAnalysis InferShapes(const Program& program) {
  return InferShapes(program, {});
}

}  // namespace lima
