#ifndef LIMA_REUSE_COMPILER_ASSIST_H_
#define LIMA_REUSE_COMPILER_ASSIST_H_

#include "runtime/program.h"

namespace lima {

/// Compiler assistance for the runtime lineage cache (Sec. 4.4). Both
/// passes run after AnalyzeProgram when LimaConfig::compiler_assist is set.

/// Unmarking: disables probing/caching for operation instances whose
/// outputs are loop-carried (recursively updated across iterations) — such
/// intermediates are never reused and only pollute the cache.
void UnmarkLoopCarriedInstructions(Program* program);

/// Reuse-aware rewrites: replaces `Z = cbind(A, B); S = tsmm(Z)` pairs
/// (where Z has no other consumer) with a fused tsmm_cbind instruction that
/// avoids materializing the cbind and reuses the cached t(A)A block — the
/// stepLm pattern of Fig. 7(a) (LIMA-CA).
void ApplyReuseAwareRewrites(Program* program);

}  // namespace lima

#endif  // LIMA_REUSE_COMPILER_ASSIST_H_
