#ifndef LIMA_REUSE_LINEAGE_CACHE_H_
#define LIMA_REUSE_LINEAGE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "obs/cache_events.h"
#include "runtime/reuse_cache.h"
#include "runtime/stats.h"

namespace lima {

/// Point-in-time counters of one lock stripe of the lineage cache
/// (LineageCache::ShardStatsSnapshot). Per shard, hits + misses == probes:
/// every Probe() call resolves to exactly one of the two, including probes
/// that blocked on a placeholder first.
struct CacheShardStats {
  int shard = 0;
  int64_t entries = 0;         ///< non-placeholder entries (resident+spilled)
  int64_t resident_bytes = 0;  ///< bytes of in-memory values
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t misses = 0;  ///< includes probes that registered a claim
  int64_t placeholder_waits = 0;
  int64_t placeholder_steals = 0;
  int64_t evictions = 0;
  int64_t spills = 0;
  int64_t restores = 0;
};

/// Point-in-time counters of one tenant of the lineage cache
/// (LineageCache::TenantStatsSnapshot). Tenants exist only when serving
/// attributes cache traffic via LineageCache::TenantScope; library use
/// without scopes has no tenants and pays nothing for the feature.
struct CacheTenantStats {
  std::string tenant;
  int64_t budget_bytes = -1;    ///< -1 = unlimited (global budget only)
  int64_t resident_bytes = 0;   ///< bytes of in-memory values owned
  int64_t entries = 0;          ///< non-placeholder entries owned
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  /// Hits on entries another tenant produced: the cross-tenant reuse the
  /// shared-cache service exists for.
  int64_t cross_tenant_hits = 0;
  int64_t puts = 0;
  int64_t evictions = 0;  ///< evictions of entries this tenant owned
};

/// The LIMA lineage cache (Sec. 4): a thread-safe map from lineage traces to
/// cached values with
///  - full reuse + placeholder entries for task-parallel workers (Sec. 4.1),
///  - partial-rewrite reuse with compensation plans (Sec. 4.2),
///  - cost-based eviction policies (LRU / DAG-Height / Cost&Size, Table 1)
///    and disk spilling with bandwidth adaptation (Sec. 4.3).
///
/// Keys are lineage items; equality is structural DAG equality with hash
/// pruning, so equivalent computations collide regardless of where (which
/// loop iteration, thread, or function) they were traced.
///
/// Concurrency (docs/CONCURRENCY.md): the map is split into
/// `config.cache_shards` lock stripes keyed by lineage-item hash. Each shard
/// owns its entry map, ghost history, condition variable, and stat counters;
/// probes and puts on different shards never contend. The memory budget is
/// global: resident bytes are tracked in one atomic, and an eviction pass
/// (serialized by `evict_mu_`, never holding more than one shard lock at a
/// time) picks victims by cost-based score across sampled shards. One
/// LineageCache instance may be shared by any number of sessions and parfor
/// workers (LimaSession shared-cache mode).
class LineageCache : public ReuseCache {
 public:
  explicit LineageCache(const LimaConfig& config,
                        RuntimeStats* stats = nullptr);
  ~LineageCache() override;

  LineageCache(const LineageCache&) = delete;
  LineageCache& operator=(const LineageCache&) = delete;

  // ReuseCache interface.
  ProbeResult Probe(const LineageItemPtr& key, bool claim) override;
  void Put(const LineageItemPtr& key, DataPtr value,
           double compute_seconds) override;
  void Abort(const LineageItemPtr& key) override;
  DataPtr Peek(const LineageItemPtr& key) override;
  DataPtr TryPartialReuse(const LineageItemPtr& key,
                          const std::vector<DataPtr>& inputs,
                          const ParallelContext* par) override;
  void Clear() override;
  int64_t NumEntries() const override;
  int64_t SizeInBytes() const override;

  /// Changes the cache budget at runtime (benchmarks).
  void SetBudget(int64_t bytes);

  /// True if a ready (non-placeholder) entry exists for `key`.
  bool Contains(const LineageItemPtr& key) const;

  RuntimeStats* stats() const { return stats_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Per-shard counters (always maintained; relaxed atomics, so a snapshot
  /// taken while workers run is approximate but each counter is exact once
  /// the cache is quiescent).
  std::vector<CacheShardStats> ShardStatsSnapshot() const;

  /// Scoped tenant attribution for the calling thread (multi-tenant
  /// serving): while alive, probes/hits/misses and inserted bytes on this
  /// thread are charged to `tenant`, and entries it inserts are owned by
  /// that tenant for budget/eviction accounting. Parfor workers spawned
  /// inside the scope inherit it (ReuseCache::ScopedTenantTag). Scopes
  /// nest; the previous attribution is restored on destruction. The tenant
  /// registry lives as long as the cache and is never shrunk.
  class TenantScope {
   public:
    TenantScope(LineageCache* cache, const std::string& tenant);
    ~TenantScope();
    TenantScope(const TenantScope&) = delete;
    TenantScope& operator=(const TenantScope&) = delete;

   private:
    void* prev_;
  };

  /// Sets (or clears, with -1) a tenant's cache-byte budget. A tenant over
  /// its budget has its own lowest-score entries evicted first — other
  /// tenants' entries are never touched on its behalf — so one noisy tenant
  /// cannot monopolize the shared cache. Creates the tenant if unknown.
  void SetTenantBudget(const std::string& tenant, int64_t budget_bytes);

  /// Per-tenant counters, sorted by tenant name; same exactness caveats as
  /// ShardStatsSnapshot. Empty when no TenantScope was ever used.
  std::vector<CacheTenantStats> TenantStatsSnapshot() const;

  /// Attaches a structured cache-event log (observability subsystem);
  /// nullptr detaches. Events: hit/miss/evict/spill/restore/restore_fail
  /// with sizes, eviction scores, shard index, and key hash.
  void set_event_log(CacheEventLog* events) {
    events_.store(events, std::memory_order_release);
  }

  // --- persistence (src/persist/snapshot.*) ------------------------------

  /// One cache entry as captured by ExportSnapshot: the lineage key plus
  /// either the resident value or the path of its spill file (exactly one
  /// of `value` / `spill_path` is set).
  struct ExportedEntry {
    LineageItemPtr key;
    DataPtr value;           ///< resident value (null when spilled)
    std::string spill_path;  ///< source spill file (empty when resident)
    double compute_seconds = 0;
    int64_t size_bytes = 0;
    int64_t refs = 0;
    int64_t last_access = 0;
    int64_t height = 0;
    std::string tenant;  ///< owning tenant name, empty when none
  };

  /// Point-in-time capture of cache contents and history for persistence:
  /// entries (keys + values/spill paths), ghost reference counts, and
  /// per-tenant accounting. Shard locks are taken one at a time, so the
  /// capture is consistent per shard (the same guarantee the stats
  /// snapshots give) and safe on a live cache.
  struct SnapshotExport {
    std::vector<ExportedEntry> entries;
    std::vector<std::pair<uint64_t, int64_t>> ghost_refs;
    std::vector<CacheTenantStats> tenants;
  };
  SnapshotExport ExportSnapshot() const;

  /// One entry to rebuild on warm start. Matrix values arrive as
  /// store-owned files (`value_path`) and are imported in the spilled
  /// state with `persistent` set, so the first hit restores them lazily
  /// WITHOUT deleting the store's copy; scalar values arrive resident.
  struct ImportedEntry {
    LineageItemPtr key;
    DataPtr value;           ///< resident import (scalars)
    std::string value_path;  ///< store-owned value file (matrices)
    double compute_seconds = 0;
    int64_t size_bytes = 0;
    int64_t refs = 0;
    int64_t last_access = 0;
    int64_t height = 0;
    std::string tenant;
  };

  /// Rebuilds cache state from a snapshot (warm start): entries that do
  /// not collide with live keys are inserted, ghost history is merged into
  /// the owning shards, tenants are re-created with their budgets and
  /// lifetime counters, and the logical clock advances past every imported
  /// access time. Returns the number of entries imported.
  int64_t ImportSnapshot(const std::vector<ImportedEntry>& entries,
                         const std::vector<std::pair<uint64_t, int64_t>>& ghosts,
                         const std::vector<CacheTenantStats>& tenants);

 private:
  /// Interned per-tenant accounting state. Pointer-stable (owned by
  /// tenants_ via unique_ptr, never erased), so Entry can hold a raw owner
  /// pointer and threads can carry one as their attribution tag.
  struct TenantState {
    LineageCache* cache = nullptr;  ///< owner; guards against stale tags
    std::string name;
    std::atomic<int64_t> budget_bytes{-1};  ///< -1 = unlimited
    std::atomic<int64_t> resident_bytes{0};
    std::atomic<int64_t> probes{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> cross_tenant_hits{0};
    std::atomic<int64_t> puts{0};
    std::atomic<int64_t> evictions{0};
  };

  struct Entry {
    DataPtr value;              ///< null while placeholder or spilled
    bool placeholder = false;
    bool spilled = false;
    /// Producing tenant (budget owner), or null when the value was inserted
    /// outside any TenantScope.
    TenantState* tenant = nullptr;
    /// Pinned entries are skipped by the eviction scan. Raised while a probe
    /// hands out a freshly restored value so the eviction pass cannot
    /// re-spill or delete it before the caller receives it (the null-hit
    /// bug); a count rather than a flag so overlapping pinners compose.
    int pins = 0;
    /// True when spill_path names a file the persistent store owns (warm
    /// start): restore and Clear() must leave the file on disk — the cache
    /// only deletes spill files it created itself.
    bool persistent = false;
    std::string spill_path;
    double compute_seconds = 0;
    int64_t height = 0;         ///< lineage DAG height (DAG-Height policy)
    int64_t last_access = 0;    ///< logical clock (LRU policy)
    int64_t refs = 0;           ///< hits + misses on this key (Cost&Size)
    int64_t size_bytes = 0;
  };

  struct KeyHash {
    size_t operator()(const LineageItemPtr& key) const {
      return static_cast<size_t>(key->hash());
    }
  };
  struct KeyEq {
    bool operator()(const LineageItemPtr& a, const LineageItemPtr& b) const {
      return LineageEquals(a, b);
    }
  };
  using EntryMap = std::unordered_map<LineageItemPtr, std::shared_ptr<Entry>,
                                      KeyHash, KeyEq>;

  /// One lock stripe: entries whose mixed key hash maps to this shard.
  struct Shard {
    int index = 0;
    mutable std::mutex mu;
    /// Placeholder protocol: waiters block here; every placeholder
    /// transition (fill, abort, clear, oversized drop) notifies.
    std::condition_variable cv;
    EntryMap entries;
    /// Reference counts of evicted keys ("ghosts"): a re-inserted entry
    /// keeps its access history, so repeatedly-missed values gain Cost&Size
    /// score and eventually stay resident (the Fig. 8(a) P2 behavior).
    std::unordered_map<uint64_t, int64_t> ghost_refs;
    // Stat counters (relaxed; per shard so the hot path shares no cache
    // line across stripes).
    std::atomic<int64_t> probes{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> placeholder_waits{0};
    std::atomic<int64_t> placeholder_steals{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> spills{0};
    std::atomic<int64_t> restores{0};
  };

  Shard& ShardFor(const LineageItemPtr& key) const {
    return *shards_[ShardIndex(key->hash())];
  }
  size_t ShardIndex(uint64_t hash) const {
    // Remix before reduction: the map inside the shard consumes the raw
    // hash, so shard selection must use independent bits.
    return static_cast<size_t>((hash * 0x9E3779B97F4A7C15ULL) >> 32) %
           shards_.size();
  }

  /// Eviction score (Table 1); the entry with the smallest score is evicted
  /// first.
  double Score(const Entry& entry) const;

  /// Global eviction pass: evicts (or spills) entries until size_bytes_ is
  /// back under budget (with hysteresis). Serialized by evict_mu_; acquires
  /// shard locks one at a time. Must be called WITHOUT any shard lock held.
  void EvictUntilFits();

  /// Tenant-scoped eviction pass: evicts only `tenant`-owned entries (all
  /// shards, ascending score) until the tenant's resident bytes fit its
  /// budget. Same locking contract as EvictUntilFits.
  void EvictTenantUntilFits(TenantState* tenant);

  /// Interns a tenant by name (creating it on first use).
  TenantState* GetOrCreateTenant(const std::string& name);

  /// The calling thread's tenant if its tag belongs to THIS cache (a tag
  /// set for another cache instance is ignored, not mischarged).
  TenantState* CurrentTenant() const {
    auto* tenant = static_cast<TenantState*>(ReuseCache::ThreadTenantTag());
    return tenant != nullptr && tenant->cache == this ? tenant : nullptr;
  }

  /// Detaches a resident entry's bytes from its owning tenant (eviction,
  /// spill, clear — whenever the value leaves memory).
  static void ReleaseTenantBytes(Entry* entry) {
    if (entry->tenant != nullptr) {
      entry->tenant->resident_bytes.fetch_sub(entry->size_bytes,
                                              std::memory_order_relaxed);
    }
  }

  /// Spills entry value to disk; true on success. Requires the entry's
  /// shard lock.
  bool SpillEntry(Shard* shard, Entry* entry);

  /// Restores a spilled entry from disk. Requires the entry's shard lock.
  Status RestoreEntry(Shard* shard, Entry* entry, uint64_t key_hash);

  /// Deletes the entry's spill file (if any) and clears the spill state;
  /// used when a restore fails so no orphan files are leaked.
  void DropSpillFile(Entry* entry);

  /// Records into the event log when one is attached.
  void RecordEvent(CacheEventKind kind, int64_t size_bytes, double score,
                   const Shard& shard, uint64_t key_hash);

  std::string NextSpillPath();

  int64_t NextClock() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  LimaConfig config_;
  /// Runtime-adjustable copy of config_.cache_budget_bytes (SetBudget).
  std::atomic<int64_t> budget_bytes_;
  RuntimeStats* stats_;
  /// Owned fallback so stats() is never null (shared-cache mode constructs
  /// the cache without a session to charge counters to).
  std::unique_ptr<RuntimeStats> owned_stats_;
  std::atomic<CacheEventLog*> events_{nullptr};
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global resident bytes across all shards (atomic budget accounting).
  std::atomic<int64_t> size_bytes_{0};
  std::atomic<int64_t> clock_{0};
  /// Serializes eviction passes; ordered strictly before shard locks.
  std::mutex evict_mu_;
  /// Tenant registry (name -> interned state); guarded by tenants_mu_.
  /// Hot paths never take this lock: they use the thread-local tag.
  mutable std::mutex tenants_mu_;
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;
  /// Rotating start shard for sampled eviction scans.
  size_t evict_cursor_ = 0;
  std::atomic<int64_t> spill_counter_{0};
  std::string spill_dir_;
  // Expected disk bandwidths (bytes/s), adapted by exponential moving
  // average of measured I/O times (Sec. 4.3).
  std::atomic<double> write_bandwidth_{500.0 * 1024 * 1024};
  std::atomic<double> read_bandwidth_{1000.0 * 1024 * 1024};
};

}  // namespace lima

#endif  // LIMA_REUSE_LINEAGE_CACHE_H_
