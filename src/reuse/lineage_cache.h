#ifndef LIMA_REUSE_LINEAGE_CACHE_H_
#define LIMA_REUSE_LINEAGE_CACHE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "obs/cache_events.h"
#include "runtime/reuse_cache.h"
#include "runtime/stats.h"

namespace lima {

/// The LIMA lineage cache (Sec. 4): a thread-safe map from lineage traces to
/// cached values with
///  - full reuse + placeholder entries for task-parallel workers (Sec. 4.1),
///  - partial-rewrite reuse with compensation plans (Sec. 4.2),
///  - cost-based eviction policies (LRU / DAG-Height / Cost&Size, Table 1)
///    and disk spilling with bandwidth adaptation (Sec. 4.3).
///
/// Keys are lineage items; equality is structural DAG equality with hash
/// pruning, so equivalent computations collide regardless of where (which
/// loop iteration, thread, or function) they were traced.
class LineageCache : public ReuseCache {
 public:
  explicit LineageCache(const LimaConfig& config,
                        RuntimeStats* stats = nullptr);
  ~LineageCache() override;

  LineageCache(const LineageCache&) = delete;
  LineageCache& operator=(const LineageCache&) = delete;

  // ReuseCache interface.
  ProbeResult Probe(const LineageItemPtr& key, bool claim) override;
  void Put(const LineageItemPtr& key, DataPtr value,
           double compute_seconds) override;
  void Abort(const LineageItemPtr& key) override;
  DataPtr Peek(const LineageItemPtr& key) override;
  DataPtr TryPartialReuse(const LineageItemPtr& key,
                          const std::vector<DataPtr>& inputs,
                          int kernel_threads) override;
  void Clear() override;
  int64_t NumEntries() const override;
  int64_t SizeInBytes() const override;

  /// Changes the cache budget at runtime (benchmarks).
  void SetBudget(int64_t bytes);

  /// True if a ready (non-placeholder) entry exists for `key`.
  bool Contains(const LineageItemPtr& key) const;

  RuntimeStats* stats() const { return stats_; }

  /// Attaches a structured cache-event log (observability subsystem);
  /// nullptr detaches. Events: hit/miss/evict/spill/restore/restore_fail
  /// with sizes and eviction scores.
  void set_event_log(CacheEventLog* events) { events_ = events; }

 private:
  struct Entry {
    DataPtr value;              ///< null while placeholder or spilled
    bool placeholder = false;
    bool spilled = false;
    /// Pinned entries are skipped by the eviction scan. Set while a probe
    /// hands out a freshly restored value so EvictUntilFits cannot re-spill
    /// or delete it before the caller receives it (the null-hit bug).
    bool pinned = false;
    std::string spill_path;
    double compute_seconds = 0;
    int64_t height = 0;         ///< lineage DAG height (DAG-Height policy)
    int64_t last_access = 0;    ///< logical clock (LRU policy)
    int64_t refs = 0;           ///< hits + misses on this key (Cost&Size)
    int64_t size_bytes = 0;
  };

  struct KeyHash {
    size_t operator()(const LineageItemPtr& key) const {
      return static_cast<size_t>(key->hash());
    }
  };
  struct KeyEq {
    bool operator()(const LineageItemPtr& a, const LineageItemPtr& b) const {
      return LineageEquals(a, b);
    }
  };
  using EntryMap = std::unordered_map<LineageItemPtr, std::shared_ptr<Entry>,
                                      KeyHash, KeyEq>;

  /// Eviction score (Table 1); the entry with the smallest score is evicted
  /// first.
  double Score(const Entry& entry) const;

  /// Evicts (or spills) entries until size_bytes_ <= budget. Requires mu_.
  void EvictUntilFits();

  /// Spills entry value to disk; true on success. Requires mu_.
  bool SpillEntry(Entry* entry);

  /// Restores a spilled entry from disk. Requires mu_.
  Status RestoreEntry(Entry* entry);

  /// Deletes the entry's spill file (if any) and clears the spill state;
  /// used when a restore fails so no orphan files are leaked. Requires mu_.
  void DropSpillFile(Entry* entry);

  /// Records into the event log when one is attached. Requires mu_.
  void RecordEvent(CacheEventKind kind, int64_t size_bytes, double score = 0);

  std::string NextSpillPath();

  LimaConfig config_;
  RuntimeStats* stats_;
  CacheEventLog* events_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  EntryMap entries_;
  int64_t size_bytes_ = 0;
  int64_t clock_ = 0;
  /// Reference counts of evicted keys ("ghosts"): a re-inserted entry keeps
  /// its access history, so repeatedly-missed values gain Cost&Size score
  /// and eventually stay resident (the Fig. 8(a) P2 behavior).
  std::unordered_map<uint64_t, int64_t> ghost_refs_;
  int64_t spill_counter_ = 0;
  std::string spill_dir_;
  // Expected disk bandwidths (bytes/s), adapted by exponential moving
  // average of measured I/O times (Sec. 4.3).
  double write_bandwidth_ = 500.0 * 1024 * 1024;
  double read_bandwidth_ = 1000.0 * 1024 * 1024;
};

}  // namespace lima

#endif  // LIMA_REUSE_LINEAGE_CACHE_H_
