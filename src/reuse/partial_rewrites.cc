#include "reuse/partial_rewrites.h"

#include <cmath>

#include "common/timer.h"
#include "matrix/aggregates.h"
#include "matrix/elementwise.h"
#include "matrix/indexing.h"
#include "matrix/matmul.h"
#include "matrix/reorg.h"
#include "reuse/lineage_cache.h"

namespace lima {

namespace {

/// The lineage opcodes this rewrite pass pattern-matches on, interned once.
/// All structural probes below are O(1) id comparisons.
struct RewriteOps {
  OpcodeId fill = InternOpcode("fill");
  OpcodeId rbind = InternOpcode("rbind");
  OpcodeId cbind = InternOpcode("cbind");
  OpcodeId tsmm = InternOpcode("tsmm");
  OpcodeId mm = InternOpcode("mm");
  OpcodeId transpose = InternOpcode("t");
  OpcodeId rightindex = InternOpcode("rightindex");
  OpcodeId nrow = InternOpcode("nrow");
  OpcodeId add = InternOpcode("+");
  OpcodeId sub = InternOpcode("-");
  OpcodeId mul = InternOpcode("*");
  OpcodeId div = InternOpcode("/");
  OpcodeId min = InternOpcode("min");
  OpcodeId max = InternOpcode("max");
  OpcodeId col_sums = InternOpcode("colSums");
  OpcodeId col_means = InternOpcode("colMeans");
  OpcodeId col_mins = InternOpcode("colMins");
  OpcodeId col_maxs = InternOpcode("colMaxs");
  OpcodeId col_vars = InternOpcode("colVars");
  OpcodeId row_sums = InternOpcode("rowSums");
  OpcodeId row_means = InternOpcode("rowMeans");
  OpcodeId row_mins = InternOpcode("rowMins");
  OpcodeId row_maxs = InternOpcode("rowMaxs");
};

const RewriteOps& Op() {
  static const RewriteOps* ops = new RewriteOps();
  return *ops;
}

MatrixPtr PeekMatrix(LineageCache* cache, const LineageItemPtr& item) {
  DataPtr data = cache->Peek(item);
  if (data == nullptr || data->type() != DataType::kMatrix) return nullptr;
  return static_cast<const MatrixData*>(data.get())->matrix();
}

MatrixPtr InputMatrix(const DataPtr& data) {
  if (data == nullptr || data->type() != DataType::kMatrix) return nullptr;
  return static_cast<const MatrixData*>(data.get())->matrix();
}

/// Parses an integer literal lineage leaf ("I5"/"D5"), or -1.
int64_t LiteralInt(const LineageItemPtr& item) {
  if (item == nullptr || !item->is_literal()) return -1;
  Result<ScalarValue> value = ScalarValue::DecodeLineageLiteral(item->data());
  if (!value.ok() || !value.ValueOrDie().is_numeric()) return -1;
  double v = value.ValueOrDie().AsDouble();
  if (v != std::floor(v)) return -1;
  return static_cast<int64_t>(v);
}

/// Is this lineage a fill(1, r, 1) — i.e. a column of ones?
bool IsOnesColumn(const LineageItemPtr& item) {
  if (item == nullptr || item->opcode_id() != Op().fill) return false;
  if (item->inputs().size() != 3) return false;
  return LiteralInt(item->inputs()[0]) == 1 &&
         LiteralInt(item->inputs()[2]) == 1;
}

void PutMatrix(LineageCache* cache, const LineageItemPtr& key, Matrix value,
               double seconds) {
  cache->Put(key, MakeMatrixData(std::move(value)), seconds);
}

/// True when some node on the left spine of an rbind chain has a cached
/// tsmm (cheap precheck before engaging the recursive compensation).
bool SpineHasCachedTsmm(LineageCache* cache, const LineageItemPtr& item) {
  LineageItemPtr node = item;
  for (int depth = 0; depth < 16; ++depth) {
    if (node->opcode_id() != Op().rbind) break;
    const LineageItemPtr& prefix = node->inputs()[0];
    if (cache->Peek(LineageItem::Create(Op().tsmm, {prefix})) != nullptr) {
      return true;
    }
    node = prefix;
  }
  return false;
}

/// Depth of the left-deep rbind spine (0 for non-rbind items).
int RbindChainDepth(const LineageItemPtr& item) {
  int depth = 0;
  LineageItemPtr node = item;
  while (depth < 16 && node->opcode_id() == Op().rbind) {
    ++depth;
    node = node->inputs()[0];
  }
  return depth;
}

/// Computes tsmm(item) for `value`, descending left-deep rbind chains:
/// per-level results are probed from and inserted into the cache, and
/// `reused` reports whether any cached component was found.
MatrixPtr ComputeTsmmChain(LineageCache* cache, const LineageItemPtr& item,
                           const MatrixPtr& value, const ParallelContext* par, int depth,
                           bool* reused) {
  LineageItemPtr key = LineageItem::Create(Op().tsmm, {item});
  MatrixPtr cached = PeekMatrix(cache, key);
  if (cached != nullptr && cached->cols() == value->cols()) {
    *reused = true;
    return cached;
  }
  if (depth < 16 && item->opcode_id() == Op().rbind) {
    const LineageItemPtr& a_item = item->inputs()[0];
    const LineageItemPtr& b_item = item->inputs()[1];
    MatrixPtr a_val = PeekMatrix(cache, a_item);
    MatrixPtr b_val = PeekMatrix(cache, b_item);
    int64_t r1 = -1;
    if (a_val != nullptr) {
      r1 = a_val->rows();
    } else if (b_val != nullptr) {
      r1 = value->rows() - b_val->rows();
    }
    if (r1 > 0 && r1 < value->rows()) {
      if (a_val == nullptr) {
        Result<Matrix> slice = RightIndex(*value, 1, r1, 1, value->cols());
        if (slice.ok()) a_val = MakeMatrixPtr(std::move(slice).ValueOrDie());
      }
      if (b_val == nullptr) {
        Result<Matrix> slice =
            RightIndex(*value, r1 + 1, value->rows(), 1, value->cols());
        if (slice.ok()) b_val = MakeMatrixPtr(std::move(slice).ValueOrDie());
      }
      if (a_val != nullptr && b_val != nullptr &&
          a_val->cols() == value->cols() && b_val->cols() == value->cols()) {
        StopWatch watch;
        MatrixPtr ta =
            ComputeTsmmChain(cache, a_item, a_val, par, depth + 1, reused);
        MatrixPtr tb =
            ComputeTsmmChain(cache, b_item, b_val, par, depth + 1, reused);
        if (ta != nullptr && tb != nullptr) {
          Result<Matrix> sum = EwiseBinary(BinaryOp::kAdd, *ta, *tb);
          if (sum.ok()) {
            MatrixPtr out = MakeMatrixPtr(std::move(sum).ValueOrDie());
            cache->Put(key, MakeMatrixData(out), watch.ElapsedSeconds());
            return out;
          }
        }
      }
    }
  }
  StopWatch watch;
  MatrixPtr out = MakeMatrixPtr(Tsmm(*value, /*left=*/true, par));
  cache->Put(key, MakeMatrixData(out), watch.ElapsedSeconds());
  return out;
}

DataPtr RewriteTsmm(LineageCache* cache, const LineageItemPtr& key,
                    const std::vector<DataPtr>& inputs,
                    const ParallelContext* par) {
  const LineageItemPtr& composed = key->inputs()[0];
  MatrixPtr z = InputMatrix(inputs[0]);
  if (z == nullptr) return nullptr;

  if (composed->opcode_id() == Op().cbind) {
    // tsmm(cbind(A,B)) -> [[tsmm(A), t(A)B], [t(B)A, tsmm(B)]].
    const LineageItemPtr& a_item = composed->inputs()[0];
    const LineageItemPtr& b_item = composed->inputs()[1];
    LineageItemPtr taa_key = LineageItem::Create(Op().tsmm, {a_item});
    MatrixPtr taa = PeekMatrix(cache, taa_key);
    if (taa == nullptr) return nullptr;
    int64_t c1 = taa->cols();
    if (c1 <= 0 || c1 >= z->cols()) return nullptr;

    StopWatch watch;
    Result<Matrix> a = RightIndex(*z, 1, z->rows(), 1, c1);
    Result<Matrix> b = RightIndex(*z, 1, z->rows(), c1 + 1, z->cols());
    if (!a.ok() || !b.ok()) return nullptr;
    Result<Matrix> tab = TransposeMatMul(*a, *b, par);
    if (!tab.ok()) return nullptr;
    Matrix tbb = Tsmm(*b, /*left=*/true, par);
    double seconds = watch.ElapsedSeconds();
    PutMatrix(cache, LineageItem::Create(Op().tsmm, {b_item}), tbb, seconds);

    int64_t c2 = tbb.cols();
    Matrix out(c1 + c2, c1 + c2);
    for (int64_t i = 0; i < c1; ++i) {
      for (int64_t j = 0; j < c1; ++j) out.At(i, j) = taa->At(i, j);
      for (int64_t j = 0; j < c2; ++j) {
        out.At(i, c1 + j) = tab->At(i, j);
        out.At(c1 + j, i) = tab->At(i, j);
      }
    }
    for (int64_t i = 0; i < c2; ++i) {
      for (int64_t j = 0; j < c2; ++j) out.At(c1 + i, c1 + j) = tbb.At(i, j);
    }
    return MakeMatrixData(std::move(out));
  }

  if (composed->opcode_id() == Op().rbind) {
    // tsmm(rbind(X,dX)) -> tsmm(X) + tsmm(dX), applied recursively down
    // left-deep rbind chains (the cross-validation fold composition,
    // Sec. 4.4): every chain level's tsmm is computed once and cached, so
    // later folds only compute the tsmm of their new fold. Deep chains
    // engage speculatively — computing by parts costs the same flops and
    // seeds the per-fold entries (the paper's reuse-aware rewrites "prefer
    // patterns that create additional reuse opportunities").
    const bool speculate = RbindChainDepth(composed) >= 2;
    if (!speculate && !SpineHasCachedTsmm(cache, composed)) return nullptr;
    bool reused = false;
    MatrixPtr result =
        ComputeTsmmChain(cache, composed, z, par, /*depth=*/0, &reused);
    if (result == nullptr || (!reused && !speculate)) return nullptr;
    return MakeMatrixData(result);
  }
  return nullptr;
}

/// mm(t(item), y_item) cache key.
LineageItemPtr TXyKey(const LineageItemPtr& x_item,
                      const LineageItemPtr& y_item) {
  return LineageItem::Create(Op().mm, {LineageItem::Create(Op().transpose, {x_item}),
                                    y_item});
}

/// True when some level of the paired left-deep rbind chains has a cached
/// t(prefix) %*% yprefix.
bool SpineHasCachedTXy(LineageCache* cache, const LineageItemPtr& x_item,
                       const LineageItemPtr& y_item) {
  LineageItemPtr x = x_item;
  LineageItemPtr y = y_item;
  for (int depth = 0; depth < 16; ++depth) {
    if (x->opcode_id() != Op().rbind || y->opcode_id() != Op().rbind) break;
    x = x->inputs()[0];
    y = y->inputs()[0];
    if (cache->Peek(TXyKey(x, y)) != nullptr) return true;
  }
  return false;
}

/// Computes t(X) %*% y for paired rbind chains (the cross-validation
/// t(Xtr)ytr pattern): t(rbind(A,B)) %*% rbind(ya,yb) = t(A)ya + t(B)yb,
/// applied recursively with per-level caching. `xt` is the materialized
/// t(X) (cols(X) x rows(X)); `y` is the stacked vector/matrix.
MatrixPtr ComputeTXyChain(LineageCache* cache, const LineageItemPtr& x_item,
                          const LineageItemPtr& y_item, const MatrixPtr& xt,
                          const MatrixPtr& y, const ParallelContext* par, int depth,
                          bool* reused) {
  LineageItemPtr key = TXyKey(x_item, y_item);
  MatrixPtr cached = PeekMatrix(cache, key);
  if (cached != nullptr && cached->rows() == xt->rows() &&
      cached->cols() == y->cols()) {
    *reused = true;
    return cached;
  }
  if (depth < 16 && x_item->opcode_id() == Op().rbind &&
      y_item->opcode_id() == Op().rbind) {
    const LineageItemPtr& a_item = x_item->inputs()[0];
    const LineageItemPtr& b_item = x_item->inputs()[1];
    const LineageItemPtr& ya_item = y_item->inputs()[0];
    const LineageItemPtr& yb_item = y_item->inputs()[1];
    // Row split of the chains, recovered from any cached component value.
    int64_t r1 = -1;
    MatrixPtr a_val = PeekMatrix(cache, a_item);
    MatrixPtr ya_val = PeekMatrix(cache, ya_item);
    MatrixPtr b_val = PeekMatrix(cache, b_item);
    if (a_val != nullptr) {
      r1 = a_val->rows();
    } else if (ya_val != nullptr) {
      r1 = ya_val->rows();
    } else if (b_val != nullptr) {
      r1 = xt->cols() - b_val->rows();
    }
    if (r1 > 0 && r1 < xt->cols()) {
      // t(X) splits by columns, y by rows.
      Result<Matrix> xta = RightIndex(*xt, 1, xt->rows(), 1, r1);
      Result<Matrix> xtb = RightIndex(*xt, 1, xt->rows(), r1 + 1, xt->cols());
      Result<Matrix> ya = RightIndex(*y, 1, r1, 1, y->cols());
      Result<Matrix> yb = RightIndex(*y, r1 + 1, y->rows(), 1, y->cols());
      if (xta.ok() && xtb.ok() && ya.ok() && yb.ok()) {
        StopWatch watch;
        MatrixPtr left = ComputeTXyChain(
            cache, a_item, ya_item, MakeMatrixPtr(std::move(xta).ValueOrDie()),
            MakeMatrixPtr(std::move(ya).ValueOrDie()), par, depth + 1,
            reused);
        MatrixPtr right = ComputeTXyChain(
            cache, b_item, yb_item, MakeMatrixPtr(std::move(xtb).ValueOrDie()),
            MakeMatrixPtr(std::move(yb).ValueOrDie()), par, depth + 1,
            reused);
        if (left != nullptr && right != nullptr) {
          Result<Matrix> sum = EwiseBinary(BinaryOp::kAdd, *left, *right);
          if (sum.ok()) {
            MatrixPtr out = MakeMatrixPtr(std::move(sum).ValueOrDie());
            cache->Put(key, MakeMatrixData(out), watch.ElapsedSeconds());
            return out;
          }
        }
      }
    }
  }
  StopWatch watch;
  Result<Matrix> product = MatMul(*xt, *y, par);
  if (!product.ok()) return nullptr;
  MatrixPtr out = MakeMatrixPtr(std::move(product).ValueOrDie());
  cache->Put(key, MakeMatrixData(out), watch.ElapsedSeconds());
  return out;
}

DataPtr RewriteMatMul(LineageCache* cache, const LineageItemPtr& key,
                      const std::vector<DataPtr>& inputs,
                    const ParallelContext* par) {
  const LineageItemPtr& x_item = key->inputs()[0];
  const LineageItemPtr& y_item = key->inputs()[1];
  MatrixPtr x = InputMatrix(inputs[0]);
  MatrixPtr y = InputMatrix(inputs[1]);
  if (x == nullptr || y == nullptr) return nullptr;

  // X %*% cbind(Y, dY) -> cbind(XY, X dY); ones column uses rowSums(X).
  if (y_item->opcode_id() == Op().cbind) {
    const LineageItemPtr& y1 = y_item->inputs()[0];
    const LineageItemPtr& y2 = y_item->inputs()[1];
    MatrixPtr cached = PeekMatrix(cache, LineageItem::Create(Op().mm, {x_item, y1}));
    if (cached != nullptr && cached->cols() < y->cols() &&
        cached->rows() == x->rows()) {
      int64_t c1 = cached->cols();
      StopWatch watch;
      Matrix extra(0, 0);
      if (IsOnesColumn(y2) && y->cols() == c1 + 1) {
        extra = RowSums(*x);
      } else {
        Result<Matrix> dy = RightIndex(*y, 1, y->rows(), c1 + 1, y->cols());
        if (!dy.ok()) return nullptr;
        Result<Matrix> product = MatMul(*x, *dy, par);
        if (!product.ok()) return nullptr;
        extra = std::move(product).ValueOrDie();
        PutMatrix(cache, LineageItem::Create(Op().mm, {x_item, y2}), extra,
                  watch.ElapsedSeconds());
      }
      Result<Matrix> out = CBind(*cached, extra);
      if (out.ok()) return MakeMatrixData(std::move(out).ValueOrDie());
    }
  }

  // rbind(X, dX) %*% Y -> rbind(XY, dX Y).
  if (x_item->opcode_id() == Op().rbind) {
    const LineageItemPtr& x1 = x_item->inputs()[0];
    const LineageItemPtr& x2 = x_item->inputs()[1];
    MatrixPtr cached = PeekMatrix(cache, LineageItem::Create(Op().mm, {x1, y_item}));
    if (cached != nullptr && cached->rows() < x->rows() &&
        cached->cols() == y->cols()) {
      int64_t r1 = cached->rows();
      StopWatch watch;
      Result<Matrix> dx = RightIndex(*x, r1 + 1, x->rows(), 1, x->cols());
      if (dx.ok()) {
        Result<Matrix> product = MatMul(*dx, *y, par);
        if (product.ok()) {
          PutMatrix(cache, LineageItem::Create(Op().mm, {x2, y_item}),
                    product.ValueOrDie(), watch.ElapsedSeconds());
          Result<Matrix> out = RBind(*cached, product.ValueOrDie());
          if (out.ok()) return MakeMatrixData(std::move(out).ValueOrDie());
        }
      }
    }
  }

  // X %*% (Y[, l:u]) -> (X %*% Ybase)[, l:u]  (full-row column slice).
  if (y_item->opcode_id() == Op().rightindex && y_item->inputs().size() == 5) {
    const LineageItemPtr& base = y_item->inputs()[0];
    int64_t rl = LiteralInt(y_item->inputs()[1]);
    int64_t ru = LiteralInt(y_item->inputs()[2]);
    int64_t cl = LiteralInt(y_item->inputs()[3]);
    int64_t cu = LiteralInt(y_item->inputs()[4]);
    // Full-row slice: literal ru == nrow(Ybase), or the traced nrow(Ybase)
    // item itself (the compiler emits nrow() for omitted row bounds).
    const LineageItemPtr& ru_item = y_item->inputs()[2];
    bool full_rows =
        ru == x->cols() ||
        (ru_item->opcode_id() == Op().nrow && ru_item->inputs().size() == 1 &&
         ru_item->inputs()[0]->Equals(*base));
    if (rl == 1 && full_rows && cl >= 1 && cu >= cl) {
      MatrixPtr cached =
          PeekMatrix(cache, LineageItem::Create(Op().mm, {x_item, base}));
      if (cached != nullptr && cached->cols() >= cu &&
          cached->rows() == x->rows()) {
        Result<Matrix> out = RightIndex(*cached, 1, cached->rows(), cl, cu);
        if (out.ok()) return MakeMatrixData(std::move(out).ValueOrDie());
      }
    }
  }

  // t(rbind-chain) %*% rbind-chain (cross-validation t(Xtr)ytr): recursive
  // per-fold computation with per-level caching.
  if (x_item->opcode_id() == Op().transpose && x_item->inputs()[0]->opcode_id() == Op().rbind &&
      y_item->opcode_id() == Op().rbind) {
    const bool speculate = RbindChainDepth(x_item->inputs()[0]) >= 2 &&
                           RbindChainDepth(y_item) >= 2;
    if (speculate || SpineHasCachedTXy(cache, x_item->inputs()[0], y_item)) {
      bool reused = false;
      MatrixPtr result = ComputeTXyChain(cache, x_item->inputs()[0], y_item,
                                         x, y, par, /*depth=*/0, &reused);
      if (result != nullptr && (reused || speculate)) {
        return MakeMatrixData(result);
      }
    }
  }

  // t(cbind(A,B)) %*% Y -> rbind(t(A)Y, t(B)Y).
  if (x_item->opcode_id() == Op().transpose &&
      x_item->inputs()[0]->opcode_id() == Op().cbind) {
    const LineageItemPtr& a_item = x_item->inputs()[0]->inputs()[0];
    const LineageItemPtr& b_item = x_item->inputs()[0]->inputs()[1];
    MatrixPtr cached = PeekMatrix(
        cache, LineageItem::Create(
                   Op().mm, {LineageItem::Create(Op().transpose, {a_item}), y_item}));
    if (cached != nullptr && cached->rows() < x->rows() &&
        cached->cols() == y->cols()) {
      int64_t r1 = cached->rows();
      StopWatch watch;
      Result<Matrix> bt = RightIndex(*x, r1 + 1, x->rows(), 1, x->cols());
      if (bt.ok()) {
        Result<Matrix> product = MatMul(*bt, *y, par);
        if (product.ok()) {
          PutMatrix(cache,
                    LineageItem::Create(
                        Op().mm, {LineageItem::Create(Op().transpose, {b_item}), y_item}),
                    product.ValueOrDie(), watch.ElapsedSeconds());
          Result<Matrix> out = RBind(*cached, product.ValueOrDie());
          if (out.ok()) return MakeMatrixData(std::move(out).ValueOrDie());
        }
      }
    }
  }
  return nullptr;
}

bool IsCellwiseOpcode(OpcodeId op) {
  return op == Op().add || op == Op().sub || op == Op().mul ||
         op == Op().div || op == Op().min || op == Op().max;
}

DataPtr RewriteEwise(LineageCache* cache, const LineageItemPtr& key,
                     const std::vector<DataPtr>& inputs) {
  // cbind(X,dX) (*) cbind(Y,dY) -> cbind(X*Y, dX*dY).
  const LineageItemPtr& a_item = key->inputs()[0];
  const LineageItemPtr& b_item = key->inputs()[1];
  if (a_item->opcode_id() != Op().cbind || b_item->opcode_id() != Op().cbind) {
    return nullptr;
  }
  MatrixPtr a = InputMatrix(inputs[0]);
  MatrixPtr b = InputMatrix(inputs[1]);
  if (a == nullptr || b == nullptr) return nullptr;
  if (a->rows() != b->rows() || a->cols() != b->cols()) return nullptr;

  MatrixPtr cached = PeekMatrix(
      cache, LineageItem::Create(key->opcode_id(),
                                 {a_item->inputs()[0], b_item->inputs()[0]}));
  if (cached == nullptr || cached->cols() >= a->cols() ||
      cached->rows() != a->rows()) {
    return nullptr;
  }
  int64_t c1 = cached->cols();
  Result<Matrix> da = RightIndex(*a, 1, a->rows(), c1 + 1, a->cols());
  Result<Matrix> db = RightIndex(*b, 1, b->rows(), c1 + 1, b->cols());
  if (!da.ok() || !db.ok()) return nullptr;

  // Parse the operator back from the opcode.
  BinaryOp op = BinaryOp::kMul;
  const OpcodeId name = key->opcode_id();
  if (name == Op().add) op = BinaryOp::kAdd;
  else if (name == Op().sub) op = BinaryOp::kSub;
  else if (name == Op().div) op = BinaryOp::kDiv;
  else if (name == Op().min) op = BinaryOp::kMin;
  else if (name == Op().max) op = BinaryOp::kMax;

  Result<Matrix> extra = EwiseBinary(op, *da, *db);
  if (!extra.ok()) return nullptr;
  Result<Matrix> out = CBind(*cached, extra.ValueOrDie());
  if (!out.ok()) return nullptr;
  return MakeMatrixData(std::move(out).ValueOrDie());
}

bool IsColAgg(OpcodeId op) {
  return op == Op().col_sums || op == Op().col_means || op == Op().col_mins ||
         op == Op().col_maxs || op == Op().col_vars;
}

bool IsRowAgg(OpcodeId op) {
  return op == Op().row_sums || op == Op().row_means ||
         op == Op().row_mins || op == Op().row_maxs;
}

Matrix ApplyAgg(OpcodeId op, const Matrix& m) {
  if (op == Op().col_sums) return ColSums(m);
  if (op == Op().col_means) return ColMeans(m);
  if (op == Op().col_mins) return ColMins(m);
  if (op == Op().col_maxs) return ColMaxs(m);
  if (op == Op().col_vars) return ColVars(m);
  if (op == Op().row_sums) return RowSums(m);
  if (op == Op().row_means) return RowMeans(m);
  if (op == Op().row_mins) return RowMins(m);
  return RowMaxs(m);
}

DataPtr RewriteAgg(LineageCache* cache, const LineageItemPtr& key,
                   const std::vector<DataPtr>& inputs) {
  const OpcodeId op = key->opcode_id();
  const LineageItemPtr& composed = key->inputs()[0];
  MatrixPtr z = InputMatrix(inputs[0]);
  if (z == nullptr) return nullptr;

  if (IsColAgg(op) && composed->opcode_id() == Op().cbind) {
    MatrixPtr cached = PeekMatrix(
        cache, LineageItem::Create(op, {composed->inputs()[0]}));
    if (cached == nullptr || cached->cols() >= z->cols()) return nullptr;
    int64_t c1 = cached->cols();
    Result<Matrix> rest = RightIndex(*z, 1, z->rows(), c1 + 1, z->cols());
    if (!rest.ok()) return nullptr;
    Matrix extra = ApplyAgg(op, rest.ValueOrDie());
    PutMatrix(cache, LineageItem::Create(op, {composed->inputs()[1]}), extra,
              0.0);
    Result<Matrix> out = CBind(*cached, extra);
    if (!out.ok()) return nullptr;
    return MakeMatrixData(std::move(out).ValueOrDie());
  }

  if (IsRowAgg(op) && composed->opcode_id() == Op().rbind) {
    MatrixPtr cached = PeekMatrix(
        cache, LineageItem::Create(op, {composed->inputs()[0]}));
    if (cached == nullptr || cached->rows() >= z->rows()) return nullptr;
    int64_t r1 = cached->rows();
    Result<Matrix> rest = RightIndex(*z, r1 + 1, z->rows(), 1, z->cols());
    if (!rest.ok()) return nullptr;
    Matrix extra = ApplyAgg(op, rest.ValueOrDie());
    PutMatrix(cache, LineageItem::Create(op, {composed->inputs()[1]}), extra,
              0.0);
    Result<Matrix> out = RBind(*cached, extra);
    if (!out.ok()) return nullptr;
    return MakeMatrixData(std::move(out).ValueOrDie());
  }
  return nullptr;
}

}  // namespace

DataPtr TryPartialRewrites(LineageCache* cache, const LineageItemPtr& key,
                           const std::vector<DataPtr>& inputs,
                           const ParallelContext* par) {
  if (key == nullptr || key->inputs().empty()) return nullptr;
  const OpcodeId op = key->opcode_id();
  if (op == Op().tsmm && inputs.size() == 1) {
    return RewriteTsmm(cache, key, inputs, par);
  }
  if (op == Op().mm && inputs.size() == 2) {
    return RewriteMatMul(cache, key, inputs, par);
  }
  if (IsCellwiseOpcode(op) && inputs.size() == 2) {
    return RewriteEwise(cache, key, inputs);
  }
  if ((IsColAgg(op) || IsRowAgg(op)) && inputs.size() == 1) {
    return RewriteAgg(cache, key, inputs);
  }
  return nullptr;
}

}  // namespace lima
