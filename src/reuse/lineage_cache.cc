#include "reuse/lineage_cache.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>
#include <vector>

#include "common/timer.h"
#include "reuse/partial_rewrites.h"

namespace lima {

namespace {

constexpr double kEmaAlpha = 0.3;

/// Lock-free exponential-moving-average update of a bandwidth estimate
/// (several threads may finish I/O concurrently).
void EmaUpdate(std::atomic<double>* bandwidth, double measured) {
  double current = bandwidth->load(std::memory_order_relaxed);
  double next;
  do {
    next = (1 - kEmaAlpha) * current + kEmaAlpha * measured;
  } while (!bandwidth->compare_exchange_weak(current, next,
                                             std::memory_order_relaxed));
}

}  // namespace

LineageCache::LineageCache(const LimaConfig& config, RuntimeStats* stats)
    : config_(config),
      budget_bytes_(config.cache_budget_bytes),
      stats_(stats) {
  if (stats_ == nullptr) {
    // Shared-cache mode constructs the cache without a session to charge
    // counters to; an owned sink keeps every code path unconditional.
    owned_stats_ = std::make_unique<RuntimeStats>();
    stats_ = owned_stats_.get();
  }
  // Spill placement: explicit spill_dir wins; otherwise a configured
  // persistent store directory keeps spill files relocatable next to the
  // snapshot (warm start); otherwise the system temp dir.
  if (!config.spill_dir.empty()) {
    spill_dir_ = config.spill_dir;
  } else if (!config.store_dir.empty()) {
    spill_dir_ = config.store_dir;
    std::error_code ec;
    std::filesystem::create_directories(spill_dir_, ec);
  } else {
    spill_dir_ = std::filesystem::temp_directory_path().string();
  }
  const int num_shards =
      std::clamp(config.cache_shards, 1, 4096);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
  }
}

LineageCache::~LineageCache() { Clear(); }

LineageCache::TenantScope::TenantScope(LineageCache* cache,
                                       const std::string& tenant)
    : prev_(ReuseCache::ThreadTenantTag()) {
  ReuseCache::SetThreadTenantTag(cache->GetOrCreateTenant(tenant));
}

LineageCache::TenantScope::~TenantScope() {
  ReuseCache::SetThreadTenantTag(prev_);
}

LineageCache::TenantState* LineageCache::GetOrCreateTenant(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::unique_ptr<TenantState>& slot = tenants_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    slot->cache = this;
    slot->name = name;
  }
  return slot.get();
}

void LineageCache::SetTenantBudget(const std::string& tenant,
                                   int64_t budget_bytes) {
  TenantState* state = GetOrCreateTenant(tenant);
  state->budget_bytes.store(budget_bytes, std::memory_order_relaxed);
  EvictTenantUntilFits(state);
}

std::vector<CacheTenantStats> LineageCache::TenantStatsSnapshot() const {
  std::vector<CacheTenantStats> out;
  std::unordered_map<const TenantState*, size_t> index;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    out.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) {
      CacheTenantStats row;
      row.tenant = name;
      row.budget_bytes = state->budget_bytes.load(std::memory_order_relaxed);
      row.resident_bytes =
          state->resident_bytes.load(std::memory_order_relaxed);
      row.probes = state->probes.load(std::memory_order_relaxed);
      row.hits = state->hits.load(std::memory_order_relaxed);
      row.misses = state->misses.load(std::memory_order_relaxed);
      row.cross_tenant_hits =
          state->cross_tenant_hits.load(std::memory_order_relaxed);
      row.puts = state->puts.load(std::memory_order_relaxed);
      row.evictions = state->evictions.load(std::memory_order_relaxed);
      index[state.get()] = out.size();
      out.push_back(std::move(row));
    }
  }
  // Entry counts come from the shard maps (the registry holds no entries).
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      if (entry->placeholder || entry->tenant == nullptr) continue;
      auto it = index.find(entry->tenant);
      if (it != index.end()) ++out[it->second].entries;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CacheTenantStats& a, const CacheTenantStats& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

double LineageCache::Score(const Entry& entry) const {
  switch (config_.eviction_policy) {
    case EvictionPolicy::kLru:
      return static_cast<double>(entry.last_access);
    case EvictionPolicy::kDagHeight:
      // Deep lineage traces have less reuse potential -> small score.
      return 1.0 / static_cast<double>(1 + entry.height);
    case EvictionPolicy::kCostSize:
      return static_cast<double>(entry.refs) * entry.compute_seconds /
             static_cast<double>(std::max<int64_t>(entry.size_bytes, 1));
  }
  return 0.0;
}

std::string LineageCache::NextSpillPath() {
  return spill_dir_ + "/lima_spill_" + std::to_string(::getpid()) + "_" +
         std::to_string(spill_counter_.fetch_add(
             1, std::memory_order_relaxed)) +
         ".bin";
}

bool LineageCache::SpillEntry(Shard* shard, Entry* entry) {
  if (entry->value == nullptr || entry->value->type() != DataType::kMatrix) {
    return false;
  }
  const MatrixPtr& m =
      static_cast<const MatrixData*>(entry->value.get())->matrix();
  std::string path = NextSpillPath();
  StopWatch watch;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  int64_t rows = m->rows();
  int64_t cols = m->cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m->data()),
            m->SizeInBytes());
  out.close();
  if (!out) {
    std::filesystem::remove(path);
    return false;
  }
  double seconds = watch.ElapsedSeconds();
  if (seconds > 0) {
    EmaUpdate(&write_bandwidth_,
              static_cast<double>(entry->size_bytes) / seconds);
  }
  shard->spills.fetch_add(1, std::memory_order_relaxed);
  stats_->spills.fetch_add(1, std::memory_order_relaxed);
  stats_->spill_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                                std::memory_order_relaxed);
  entry->spill_path = std::move(path);
  entry->spilled = true;
  entry->value = nullptr;
  return true;
}

Status LineageCache::RestoreEntry(Shard* shard, Entry* entry,
                                  uint64_t key_hash) {
  StopWatch watch;
  std::ifstream in(entry->spill_path, std::ios::binary);
  if (!in) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes, 0, *shard,
                key_hash);
    return Status::IoError("cannot restore spilled entry from " +
                           entry->spill_path);
  }
  int64_t rows = 0;
  int64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  // Validate the header against the size recorded at insertion BEFORE
  // allocating: a truncated or corrupt spill file must yield IoError, not a
  // garbage-dimension allocation. `cols == expected / rows` bounds the
  // product before it is formed, so the overflow check is sound.
  const int64_t expected =
      entry->size_bytes / static_cast<int64_t>(sizeof(double));
  const bool header_ok =
      in.good() && rows >= 0 && cols >= 0 &&
      ((rows == 0 || cols == 0) ? expected == 0
                                : cols == expected / rows &&
                                      rows * cols == expected);
  if (!header_ok) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes, 0, *shard,
                key_hash);
    return Status::IoError("corrupt spill header in " + entry->spill_path);
  }
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.mutable_data()), m.SizeInBytes());
  if (!in) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes, 0, *shard,
                key_hash);
    return Status::IoError("short read restoring " + entry->spill_path);
  }
  double seconds = watch.ElapsedSeconds();
  if (seconds > 0) {
    EmaUpdate(&read_bandwidth_,
              static_cast<double>(entry->size_bytes) / seconds);
  }
  // Spill files the cache wrote itself are consumed by the restore; files
  // owned by the persistent store stay on disk so the snapshot that
  // references them remains valid.
  if (!entry->persistent) std::filesystem::remove(entry->spill_path);
  entry->value = MakeMatrixData(std::move(m));
  entry->spilled = false;
  entry->persistent = false;
  entry->spill_path.clear();
  size_bytes_.fetch_add(entry->size_bytes, std::memory_order_relaxed);
  if (entry->tenant != nullptr) {
    entry->tenant->resident_bytes.fetch_add(entry->size_bytes,
                                            std::memory_order_relaxed);
  }
  shard->restores.fetch_add(1, std::memory_order_relaxed);
  stats_->restores.fetch_add(1, std::memory_order_relaxed);
  RecordEvent(CacheEventKind::kRestore, entry->size_bytes, 0, *shard,
              key_hash);
  return Status::OK();
}

void LineageCache::DropSpillFile(Entry* entry) {
  if (!entry->spill_path.empty()) {
    std::error_code ec;  // best effort; the file may already be gone
    std::filesystem::remove(entry->spill_path, ec);
  }
  entry->spill_path.clear();
  entry->spilled = false;
  entry->persistent = false;
}

void LineageCache::RecordEvent(CacheEventKind kind, int64_t size_bytes,
                               double score, const Shard& shard,
                               uint64_t key_hash) {
  CacheEventLog* events = events_.load(std::memory_order_acquire);
  if (events != nullptr) {
    events->Record(kind, size_bytes, score, shard.index, key_hash);
  }
}

void LineageCache::EvictUntilFits() {
  // One evictor at a time; shard locks are taken strictly after evict_mu_
  // and one at a time, so the pass cannot deadlock against probes/puts.
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  const int64_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (size_bytes_.load(std::memory_order_relaxed) <= budget) return;
  // Batch eviction with hysteresis: score scans (semantically the paper's
  // priority queue), then evict in ascending score order until 80% of the
  // budget, so back-to-back Puts do not rescan.
  const int64_t low_water = budget - budget / 5;
  const size_t nshards = shards_.size();
  // Sampled scan: small caches scan everything; large shard counts scan a
  // rotating half per round so a single pass stays cheap. The rotation
  // cursor guarantees every shard is visited within one EvictUntilFits call
  // if pressure persists.
  const size_t sample =
      nshards <= 8 ? nshards : std::max<size_t>(8, nshards / 2);

  struct Victim {
    double score;
    size_t shard;
    LineageItemPtr key;
  };
  size_t scanned = 0;
  while (size_bytes_.load(std::memory_order_relaxed) > low_water &&
         scanned < nshards) {
    std::vector<Victim> order;
    for (size_t k = 0; k < sample && scanned < nshards; ++k, ++scanned) {
      Shard& shard = *shards_[evict_cursor_++ % nshards];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, entry] : shard.entries) {
        if (entry->placeholder || entry->spilled || entry->pins > 0 ||
            entry->value == nullptr) {
          continue;
        }
        order.push_back(
            {Score(*entry), static_cast<size_t>(shard.index), key});
      }
    }
    std::sort(order.begin(), order.end(), [](const Victim& a, const Victim& b) {
      if (a.score != b.score) return a.score < b.score;
      return a.shard < b.shard;
    });
    for (const Victim& victim : order) {
      if (size_bytes_.load(std::memory_order_relaxed) <= low_water) break;
      Shard& shard = *shards_[victim.shard];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(victim.key);
      if (it == shard.entries.end()) continue;
      Entry& entry = *it->second;
      // Re-validate under the lock: the entry may have been spilled, pinned,
      // or replaced since the scoring scan.
      if (entry.placeholder || entry.spilled || entry.pins > 0 ||
          entry.value == nullptr) {
        continue;
      }
      const uint64_t key_hash = it->first->hash();
      size_bytes_.fetch_sub(entry.size_bytes, std::memory_order_relaxed);
      ReleaseTenantBytes(&entry);
      if (entry.tenant != nullptr) {
        entry.tenant->evictions.fetch_add(1, std::memory_order_relaxed);
      }
      if (shard.ghost_refs.size() > 100000) shard.ghost_refs.clear();
      shard.ghost_refs[key_hash] = entry.refs;
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      stats_->evictions.fetch_add(1, std::memory_order_relaxed);
      RecordEvent(CacheEventKind::kEvict, entry.size_bytes, victim.score,
                  shard, key_hash);
      // Spill only when recomputation costs more than the estimated I/O
      // time (Sec. 4.3); otherwise delete.
      bool spilled = false;
      if (config_.enable_spilling &&
          entry.compute_seconds >
              static_cast<double>(entry.size_bytes) /
                  read_bandwidth_.load(std::memory_order_relaxed)) {
        spilled = SpillEntry(&shard, &entry);
        if (spilled) {
          RecordEvent(CacheEventKind::kSpill, entry.size_bytes, victim.score,
                      shard, key_hash);
        }
      }
      if (!spilled) shard.entries.erase(it);
    }
  }
}

void LineageCache::EvictTenantUntilFits(TenantState* tenant) {
  // Same locking contract as the global pass: evict_mu_ strictly before
  // shard locks, one shard lock at a time, never called with one held.
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  const int64_t budget = tenant->budget_bytes.load(std::memory_order_relaxed);
  if (budget < 0) return;
  if (tenant->resident_bytes.load(std::memory_order_relaxed) <= budget) {
    return;
  }

  // Tenant entries are rare relative to the whole cache, so this scans every
  // shard once (no sampling): the victim set is the tenant's own entries
  // only, and other tenants' entries are never touched on its behalf.
  struct Victim {
    double score;
    size_t shard;
    LineageItemPtr key;
  };
  std::vector<Victim> order;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      if (entry->tenant != tenant || entry->placeholder || entry->spilled ||
          entry->pins > 0 || entry->value == nullptr) {
        continue;
      }
      order.push_back(
          {Score(*entry), static_cast<size_t>(shard->index), key});
    }
  }
  std::sort(order.begin(), order.end(), [](const Victim& a, const Victim& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.shard < b.shard;
  });
  for (const Victim& victim : order) {
    if (tenant->resident_bytes.load(std::memory_order_relaxed) <= budget) {
      break;
    }
    Shard& shard = *shards_[victim.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(victim.key);
    if (it == shard.entries.end()) continue;
    Entry& entry = *it->second;
    // Re-validate under the lock, exactly as the global pass does.
    if (entry.tenant != tenant || entry.placeholder || entry.spilled ||
        entry.pins > 0 || entry.value == nullptr) {
      continue;
    }
    const uint64_t key_hash = it->first->hash();
    size_bytes_.fetch_sub(entry.size_bytes, std::memory_order_relaxed);
    ReleaseTenantBytes(&entry);
    tenant->evictions.fetch_add(1, std::memory_order_relaxed);
    if (shard.ghost_refs.size() > 100000) shard.ghost_refs.clear();
    shard.ghost_refs[key_hash] = entry.refs;
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    stats_->evictions.fetch_add(1, std::memory_order_relaxed);
    RecordEvent(CacheEventKind::kEvict, entry.size_bytes, victim.score, shard,
                key_hash);
    bool spilled = false;
    if (config_.enable_spilling &&
        entry.compute_seconds >
            static_cast<double>(entry.size_bytes) /
                read_bandwidth_.load(std::memory_order_relaxed)) {
      spilled = SpillEntry(&shard, &entry);
      if (spilled) {
        RecordEvent(CacheEventKind::kSpill, entry.size_bytes, victim.score,
                    shard, key_hash);
      }
    }
    if (!spilled) shard.entries.erase(it);
  }
}

ReuseCache::ProbeResult LineageCache::Probe(const LineageItemPtr& key,
                                            bool claim) {
  Shard& shard = ShardFor(key);
  shard.probes.fetch_add(1, std::memory_order_relaxed);
  TenantState* tenant = CurrentTenant();
  if (tenant != nullptr) {
    tenant->probes.fetch_add(1, std::memory_order_relaxed);
  }
  // The wait deadline spans the whole blocking episode (spurious wakeups and
  // re-probes of a still-pending placeholder do not reset it), so a dead
  // producer blocks a waiter for at most placeholder_wait_millis.
  bool waited = false;
  std::chrono::steady_clock::time_point deadline;
  std::unique_lock<std::mutex> lock(shard.mu);
  while (true) {
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      if (tenant != nullptr) {
        tenant->misses.fetch_add(1, std::memory_order_relaxed);
      }
      RecordEvent(CacheEventKind::kMiss, 0, 0, shard, key->hash());
      if (!claim) return {ProbeKind::kMiss, nullptr};
      auto entry = std::make_shared<Entry>();
      entry->placeholder = true;
      entry->last_access = NextClock();
      auto ghost = shard.ghost_refs.find(key->hash());
      entry->refs = 1 + (ghost != shard.ghost_refs.end() ? ghost->second : 0);
      shard.entries.emplace(key, std::move(entry));
      return {ProbeKind::kClaimed, nullptr};
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->placeholder) {
      // Another worker is computing this value (Sec. 4.1): block until the
      // placeholder is filled or aborted — but never forever. If the
      // producer dies without Put/Abort, the bounded wait expires and the
      // waiter steals the claim (recomputing a pure operation is always
      // safe; see docs/CONCURRENCY.md "placeholder protocol").
      if (!waited) {
        waited = true;
        shard.placeholder_waits.fetch_add(1, std::memory_order_relaxed);
        stats_->placeholder_waits.fetch_add(1, std::memory_order_relaxed);
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(
                       std::max<int64_t>(config_.placeholder_wait_millis, 1));
      }
      // The enclosing loop is the wait predicate: every wakeup (spurious or
      // not) re-probes the map, which also covers the entry being erased by
      // Abort.  NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions)
      if (shard.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        auto stale = shard.entries.find(key);
        if (stale != shard.entries.end() && stale->second == entry &&
            entry->placeholder) {
          // Producer presumed dead: take over its claim. The placeholder
          // stays registered, so if the producer is merely slow its later
          // Put/Abort still resolves every remaining waiter.
          shard.placeholder_steals.fetch_add(1, std::memory_order_relaxed);
          stats_->placeholder_steals.fetch_add(1, std::memory_order_relaxed);
          shard.misses.fetch_add(1, std::memory_order_relaxed);
          if (tenant != nullptr) {
            tenant->misses.fetch_add(1, std::memory_order_relaxed);
          }
          RecordEvent(CacheEventKind::kMiss, 0, 0, shard, key->hash());
          return {claim ? ProbeKind::kClaimed : ProbeKind::kMiss, nullptr};
        }
      }
      continue;  // Re-probe from scratch.
    }
    entry->refs++;
    entry->last_access = NextClock();
    if (entry->spilled) {
      Status restored = RestoreEntry(&shard, entry.get(), key->hash());
      if (!restored.ok()) {
        // Unreadable/corrupt spill file: drop the on-disk file too, or every
        // failed restore leaks a lima_spill_* file in spill_dir_.
        DropSpillFile(entry.get());
        shard.entries.erase(it);
        continue;  // Re-probe: now a miss (and a claim, when requested).
      }
      // Hold the value and pin the entry: the restore pushed size_bytes_
      // back up, and the eviction pass could otherwise immediately re-spill
      // or evict the just-restored entry, returning kHit with a null value.
      DataPtr value = entry->value;
      entry->pins++;
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (tenant != nullptr) {
        tenant->hits.fetch_add(1, std::memory_order_relaxed);
        if (entry->tenant != nullptr && entry->tenant != tenant) {
          tenant->cross_tenant_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      RecordEvent(CacheEventKind::kHit, entry->size_bytes, 0, shard,
                  key->hash());
      stats_->compute_saved_nanos.fetch_add(
          static_cast<int64_t>(entry->compute_seconds * 1e9),
          std::memory_order_relaxed);
      lock.unlock();
      EvictUntilFits();  // global pass; must not hold the shard lock
      lock.lock();
      entry->pins--;
      return {ProbeKind::kHit, std::move(value)};
    }
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    if (tenant != nullptr) {
      tenant->hits.fetch_add(1, std::memory_order_relaxed);
      if (entry->tenant != nullptr && entry->tenant != tenant) {
        tenant->cross_tenant_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    RecordEvent(CacheEventKind::kHit, entry->size_bytes, 0, shard,
                key->hash());
    stats_->compute_saved_nanos.fetch_add(
        static_cast<int64_t>(entry->compute_seconds * 1e9),
        std::memory_order_relaxed);
    return {ProbeKind::kHit, entry->value};
  }
}

void LineageCache::Put(const LineageItemPtr& key, DataPtr value,
                       double compute_seconds) {
  const int64_t size = value->SizeInBytes();
  const int64_t budget = budget_bytes_.load(std::memory_order_relaxed);
  TenantState* tenant = CurrentTenant();
  Shard& shard = ShardFor(key);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);

    // Objects larger than the budget are not subject to caching (Sec. 4.3).
    if (size > budget) {
      if (it != shard.entries.end() && it->second->placeholder) {
        shard.entries.erase(it);
        shard.cv.notify_all();
      }
      return;
    }

    if (it != shard.entries.end()) {
      Entry& entry = *it->second;
      if (!entry.placeholder && (entry.value != nullptr || entry.spilled)) {
        return;  // Already cached.
      }
      entry.placeholder = false;
      entry.value = std::move(value);
      entry.compute_seconds = compute_seconds;
      entry.height = key->height();
      entry.size_bytes = size;
      entry.last_access = NextClock();
      entry.tenant = tenant;  // the producer that filled the placeholder
      size_bytes_.fetch_add(size, std::memory_order_relaxed);
      shard.cv.notify_all();
    } else {
      auto entry = std::make_shared<Entry>();
      entry->value = std::move(value);
      entry->compute_seconds = compute_seconds;
      entry->height = key->height();
      entry->size_bytes = size;
      entry->last_access = NextClock();
      entry->tenant = tenant;
      auto ghost = shard.ghost_refs.find(key->hash());
      entry->refs = 1 + (ghost != shard.ghost_refs.end() ? ghost->second : 0);
      size_bytes_.fetch_add(size, std::memory_order_relaxed);
      shard.entries.emplace(key, std::move(entry));
    }
    if (tenant != nullptr) {
      tenant->puts.fetch_add(1, std::memory_order_relaxed);
      tenant->resident_bytes.fetch_add(size, std::memory_order_relaxed);
    }
  }
  // Per-tenant budget first (evicts only the offending tenant's entries),
  // then the global pass; both run without the shard lock.
  if (tenant != nullptr &&
      tenant->budget_bytes.load(std::memory_order_relaxed) >= 0 &&
      tenant->resident_bytes.load(std::memory_order_relaxed) >
          tenant->budget_bytes.load(std::memory_order_relaxed)) {
    EvictTenantUntilFits(tenant);
  }
  if (size_bytes_.load(std::memory_order_relaxed) > budget) EvictUntilFits();
}

void LineageCache::Abort(const LineageItemPtr& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end() && it->second->placeholder) {
    shard.entries.erase(it);
  }
  shard.cv.notify_all();
}

DataPtr LineageCache::Peek(const LineageItemPtr& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  std::shared_ptr<Entry> entry = it->second;
  if (entry->placeholder) return nullptr;
  if (entry->spilled) {
    if (!RestoreEntry(&shard, entry.get(), key->hash()).ok()) {
      DropSpillFile(entry.get());  // no orphan spill files on failure
      shard.entries.erase(it);
      return nullptr;
    }
    // Same pinning as Probe: eviction must not null the value being handed
    // out to the partial-rewrite matcher.
    DataPtr value = entry->value;
    entry->pins++;
    entry->refs++;
    entry->last_access = NextClock();
    lock.unlock();
    EvictUntilFits();
    lock.lock();
    entry->pins--;
    return value;
  }
  entry->refs++;
  entry->last_access = NextClock();
  return entry->value;
}

DataPtr LineageCache::TryPartialReuse(const LineageItemPtr& key,
                                      const std::vector<DataPtr>& inputs,
                                      const ParallelContext* par) {
  return TryPartialRewrites(this, key, inputs, par);
}

void LineageCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    int64_t resident = 0;
    for (auto& [key, entry] : shard->entries) {
      if (entry->spilled && !entry->persistent) {
        std::filesystem::remove(entry->spill_path);
      }
      if (!entry->placeholder && !entry->spilled && entry->value != nullptr) {
        resident += entry->size_bytes;
        ReleaseTenantBytes(entry.get());
      }
    }
    shard->entries.clear();
    size_bytes_.fetch_sub(resident, std::memory_order_relaxed);
    shard->cv.notify_all();
  }
}

int64_t LineageCache::NumEntries() const {
  int64_t count = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      if (!entry->placeholder) ++count;
    }
  }
  return count;
}

int64_t LineageCache::SizeInBytes() const {
  return size_bytes_.load(std::memory_order_relaxed);
}

void LineageCache::SetBudget(int64_t bytes) {
  budget_bytes_.store(bytes, std::memory_order_relaxed);
  EvictUntilFits();
}

bool LineageCache::Contains(const LineageItemPtr& key) const {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() && !it->second->placeholder;
}

LineageCache::SnapshotExport LineageCache::ExportSnapshot() const {
  SnapshotExport out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      if (entry->placeholder) continue;
      const bool resident = entry->value != nullptr;
      const bool spilled = entry->spilled && !entry->spill_path.empty();
      if (!resident && !spilled) continue;
      ExportedEntry row;
      row.key = key;
      if (resident) {
        row.value = entry->value;
      } else {
        row.spill_path = entry->spill_path;
      }
      row.compute_seconds = entry->compute_seconds;
      row.size_bytes = entry->size_bytes;
      row.refs = entry->refs;
      row.last_access = entry->last_access;
      row.height = entry->height;
      if (entry->tenant != nullptr) row.tenant = entry->tenant->name;
      out.entries.push_back(std::move(row));
    }
    for (const auto& [hash, refs] : shard->ghost_refs) {
      out.ghost_refs.emplace_back(hash, refs);
    }
  }
  out.tenants = TenantStatsSnapshot();
  return out;
}

int64_t LineageCache::ImportSnapshot(
    const std::vector<ImportedEntry>& entries,
    const std::vector<std::pair<uint64_t, int64_t>>& ghosts,
    const std::vector<CacheTenantStats>& tenants) {
  for (const CacheTenantStats& row : tenants) {
    if (row.tenant.empty()) continue;
    TenantState* state = GetOrCreateTenant(row.tenant);
    state->budget_bytes.store(row.budget_bytes, std::memory_order_relaxed);
    state->probes.store(row.probes, std::memory_order_relaxed);
    state->hits.store(row.hits, std::memory_order_relaxed);
    state->misses.store(row.misses, std::memory_order_relaxed);
    state->cross_tenant_hits.store(row.cross_tenant_hits,
                                   std::memory_order_relaxed);
    state->puts.store(row.puts, std::memory_order_relaxed);
    state->evictions.store(row.evictions, std::memory_order_relaxed);
  }

  int64_t imported = 0;
  int64_t max_access = 0;
  for (const ImportedEntry& row : entries) {
    if (row.key == nullptr) continue;
    TenantState* tenant =
        row.tenant.empty() ? nullptr : GetOrCreateTenant(row.tenant);
    Shard& shard = ShardFor(row.key);
    std::unique_lock<std::mutex> lock(shard.mu);
    if (shard.entries.count(row.key) != 0) continue;
    auto entry = std::make_shared<Entry>();
    if (row.value != nullptr) {
      entry->value = row.value;
      size_bytes_.fetch_add(row.size_bytes, std::memory_order_relaxed);
      if (tenant != nullptr) {
        tenant->resident_bytes.fetch_add(row.size_bytes,
                                         std::memory_order_relaxed);
      }
    } else {
      // Matrix values stay on disk until first use; the file belongs to
      // the store, so restores and Clear() must not delete it.
      entry->spilled = true;
      entry->persistent = true;
      entry->spill_path = row.value_path;
    }
    entry->compute_seconds = row.compute_seconds;
    entry->size_bytes = row.size_bytes;
    entry->refs = row.refs;
    entry->last_access = row.last_access;
    entry->height = row.height;
    entry->tenant = tenant;
    shard.entries.emplace(row.key, std::move(entry));
    max_access = std::max(max_access, row.last_access);
    ++imported;
  }
  for (const auto& [hash, refs] : ghosts) {
    Shard& shard = *shards_[ShardIndex(hash)];
    std::unique_lock<std::mutex> lock(shard.mu);
    int64_t& slot = shard.ghost_refs[hash];
    slot = std::max(slot, refs);
    max_access = std::max(max_access, int64_t{0});
  }
  // The logical clock must move past every imported access time, or new
  // traffic would look older than snapshot-era entries to the LRU policy.
  int64_t current = clock_.load(std::memory_order_relaxed);
  while (current < max_access &&
         !clock_.compare_exchange_weak(current, max_access,
                                       std::memory_order_relaxed)) {
  }
  EvictUntilFits();
  return imported;
}

std::vector<CacheShardStats> LineageCache::ShardStatsSnapshot() const {
  std::vector<CacheShardStats> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    CacheShardStats row;
    row.shard = shard->index;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      for (const auto& [key, entry] : shard->entries) {
        if (entry->placeholder) continue;
        ++row.entries;
        if (!entry->spilled && entry->value != nullptr) {
          row.resident_bytes += entry->size_bytes;
        }
      }
    }
    row.probes = shard->probes.load(std::memory_order_relaxed);
    row.hits = shard->hits.load(std::memory_order_relaxed);
    row.misses = shard->misses.load(std::memory_order_relaxed);
    row.placeholder_waits =
        shard->placeholder_waits.load(std::memory_order_relaxed);
    row.placeholder_steals =
        shard->placeholder_steals.load(std::memory_order_relaxed);
    row.evictions = shard->evictions.load(std::memory_order_relaxed);
    row.spills = shard->spills.load(std::memory_order_relaxed);
    row.restores = shard->restores.load(std::memory_order_relaxed);
    out.push_back(row);
  }
  return out;
}

}  // namespace lima
