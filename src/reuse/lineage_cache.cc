#include "reuse/lineage_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>
#include <vector>

#include "common/timer.h"
#include "reuse/partial_rewrites.h"

namespace lima {

namespace {

constexpr double kEmaAlpha = 0.3;

}  // namespace

LineageCache::LineageCache(const LimaConfig& config, RuntimeStats* stats)
    : config_(config), stats_(stats) {
  spill_dir_ = config.spill_dir.empty()
                   ? std::filesystem::temp_directory_path().string()
                   : config.spill_dir;
}

LineageCache::~LineageCache() { Clear(); }

double LineageCache::Score(const Entry& entry) const {
  switch (config_.eviction_policy) {
    case EvictionPolicy::kLru:
      return static_cast<double>(entry.last_access);
    case EvictionPolicy::kDagHeight:
      // Deep lineage traces have less reuse potential -> small score.
      return 1.0 / static_cast<double>(1 + entry.height);
    case EvictionPolicy::kCostSize:
      return static_cast<double>(entry.refs) * entry.compute_seconds /
             static_cast<double>(std::max<int64_t>(entry.size_bytes, 1));
  }
  return 0.0;
}

std::string LineageCache::NextSpillPath() {
  return spill_dir_ + "/lima_spill_" + std::to_string(::getpid()) + "_" +
         std::to_string(spill_counter_++) + ".bin";
}

bool LineageCache::SpillEntry(Entry* entry) {
  if (entry->value == nullptr || entry->value->type() != DataType::kMatrix) {
    return false;
  }
  const MatrixPtr& m =
      static_cast<const MatrixData*>(entry->value.get())->matrix();
  std::string path = NextSpillPath();
  StopWatch watch;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  int64_t rows = m->rows();
  int64_t cols = m->cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m->data()),
            m->SizeInBytes());
  out.close();
  if (!out) {
    std::filesystem::remove(path);
    return false;
  }
  double seconds = watch.ElapsedSeconds();
  if (seconds > 0) {
    double measured = static_cast<double>(entry->size_bytes) / seconds;
    write_bandwidth_ = (1 - kEmaAlpha) * write_bandwidth_ + kEmaAlpha * measured;
  }
  if (stats_ != nullptr) {
    stats_->spills.fetch_add(1, std::memory_order_relaxed);
    stats_->spill_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                                  std::memory_order_relaxed);
  }
  entry->spill_path = std::move(path);
  entry->spilled = true;
  entry->value = nullptr;
  return true;
}

Status LineageCache::RestoreEntry(Entry* entry) {
  StopWatch watch;
  std::ifstream in(entry->spill_path, std::ios::binary);
  if (!in) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes);
    return Status::IoError("cannot restore spilled entry from " +
                           entry->spill_path);
  }
  int64_t rows = 0;
  int64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  // Validate the header against the size recorded at insertion BEFORE
  // allocating: a truncated or corrupt spill file must yield IoError, not a
  // garbage-dimension allocation. `cols == expected / rows` bounds the
  // product before it is formed, so the overflow check is sound.
  const int64_t expected =
      entry->size_bytes / static_cast<int64_t>(sizeof(double));
  const bool header_ok =
      in.good() && rows >= 0 && cols >= 0 &&
      ((rows == 0 || cols == 0) ? expected == 0
                                : cols == expected / rows &&
                                      rows * cols == expected);
  if (!header_ok) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes);
    return Status::IoError("corrupt spill header in " + entry->spill_path);
  }
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.mutable_data()), m.SizeInBytes());
  if (!in) {
    RecordEvent(CacheEventKind::kRestoreFail, entry->size_bytes);
    return Status::IoError("short read restoring " + entry->spill_path);
  }
  double seconds = watch.ElapsedSeconds();
  if (seconds > 0) {
    double measured = static_cast<double>(entry->size_bytes) / seconds;
    read_bandwidth_ = (1 - kEmaAlpha) * read_bandwidth_ + kEmaAlpha * measured;
  }
  std::filesystem::remove(entry->spill_path);
  entry->value = MakeMatrixData(std::move(m));
  entry->spilled = false;
  entry->spill_path.clear();
  size_bytes_ += entry->size_bytes;
  if (stats_ != nullptr) {
    stats_->restores.fetch_add(1, std::memory_order_relaxed);
  }
  RecordEvent(CacheEventKind::kRestore, entry->size_bytes);
  return Status::OK();
}

void LineageCache::DropSpillFile(Entry* entry) {
  if (!entry->spill_path.empty()) {
    std::error_code ec;  // best effort; the file may already be gone
    std::filesystem::remove(entry->spill_path, ec);
  }
  entry->spill_path.clear();
  entry->spilled = false;
}

void LineageCache::RecordEvent(CacheEventKind kind, int64_t size_bytes,
                               double score) {
  if (events_ != nullptr) events_->Record(kind, size_bytes, score);
}

void LineageCache::EvictUntilFits() {
  if (size_bytes_ <= config_.cache_budget_bytes) return;
  // Batch eviction with hysteresis: one score scan (semantically the
  // paper's priority queue), then evict in ascending score order until 80%
  // of the budget, so back-to-back Puts do not rescan.
  const int64_t low_water =
      config_.cache_budget_bytes - config_.cache_budget_bytes / 5;
  std::vector<std::pair<double, LineageItemPtr>> order;
  order.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (entry->placeholder || entry->spilled || entry->pinned ||
        entry->value == nullptr) {
      continue;
    }
    order.emplace_back(Score(*entry), key);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [score, key] : order) {
    if (size_bytes_ <= low_water) break;
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    Entry& entry = *it->second;
    size_bytes_ -= entry.size_bytes;
    if (ghost_refs_.size() > 100000) ghost_refs_.clear();
    ghost_refs_[it->first->hash()] = entry.refs;
    if (stats_ != nullptr) {
      stats_->evictions.fetch_add(1, std::memory_order_relaxed);
    }
    RecordEvent(CacheEventKind::kEvict, entry.size_bytes, score);
    // Spill only when recomputation costs more than the estimated I/O time
    // (Sec. 4.3); otherwise delete.
    bool spilled = false;
    if (config_.enable_spilling &&
        entry.compute_seconds >
            static_cast<double>(entry.size_bytes) / read_bandwidth_) {
      spilled = SpillEntry(&entry);
      if (spilled) RecordEvent(CacheEventKind::kSpill, entry.size_bytes, score);
    }
    if (!spilled) entries_.erase(it);
  }
}

ReuseCache::ProbeResult LineageCache::Probe(const LineageItemPtr& key,
                                            bool claim) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      RecordEvent(CacheEventKind::kMiss, 0);
      if (!claim) return {ProbeKind::kMiss, nullptr};
      auto entry = std::make_shared<Entry>();
      entry->placeholder = true;
      entry->last_access = ++clock_;
      auto ghost = ghost_refs_.find(key->hash());
      entry->refs = 1 + (ghost != ghost_refs_.end() ? ghost->second : 0);
      entries_.emplace(key, std::move(entry));
      return {ProbeKind::kClaimed, nullptr};
    }
    std::shared_ptr<Entry> entry = it->second;
    entry->refs++;
    entry->last_access = ++clock_;
    if (entry->placeholder) {
      // Another worker is computing this value (Sec. 4.1): block until the
      // placeholder is filled or aborted.
      if (stats_ != nullptr) {
        stats_->placeholder_waits.fetch_add(1, std::memory_order_relaxed);
      }
      // The enclosing loop is the wait predicate: every wakeup (spurious or
      // not) re-probes the map, which also covers the entry being erased by
      // Abort.  NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions)
      cv_.wait(lock);
      continue;  // Re-probe from scratch.
    }
    if (entry->spilled) {
      Status restored = RestoreEntry(entry.get());
      if (!restored.ok()) {
        // Unreadable/corrupt spill file: drop the on-disk file too, or every
        // failed restore leaks a lima_spill_* file in spill_dir_.
        DropSpillFile(entry.get());
        entries_.erase(it);
        continue;  // Re-probe: now a miss (and a claim, when requested).
      }
      // Hold the value and pin the entry: the restore pushed size_bytes_
      // back up, and EvictUntilFits could otherwise immediately re-spill or
      // evict the just-restored entry, returning kHit with a null value.
      DataPtr value = entry->value;
      entry->pinned = true;
      EvictUntilFits();
      entry->pinned = false;
      RecordEvent(CacheEventKind::kHit, entry->size_bytes);
      if (stats_ != nullptr) {
        stats_->compute_saved_nanos.fetch_add(
            static_cast<int64_t>(entry->compute_seconds * 1e9),
            std::memory_order_relaxed);
      }
      return {ProbeKind::kHit, std::move(value)};
    }
    RecordEvent(CacheEventKind::kHit, entry->size_bytes);
    if (stats_ != nullptr) {
      stats_->compute_saved_nanos.fetch_add(
          static_cast<int64_t>(entry->compute_seconds * 1e9),
          std::memory_order_relaxed);
    }
    return {ProbeKind::kHit, entry->value};
  }
}

void LineageCache::Put(const LineageItemPtr& key, DataPtr value,
                       double compute_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  int64_t size = value->SizeInBytes();
  auto it = entries_.find(key);

  // Objects larger than the budget are not subject to caching (Sec. 4.3).
  if (size > config_.cache_budget_bytes) {
    if (it != entries_.end() && it->second->placeholder) {
      entries_.erase(it);
      cv_.notify_all();
    }
    return;
  }

  if (it != entries_.end()) {
    Entry& entry = *it->second;
    if (!entry.placeholder && (entry.value != nullptr || entry.spilled)) {
      return;  // Already cached.
    }
    entry.placeholder = false;
    entry.value = std::move(value);
    entry.compute_seconds = compute_seconds;
    entry.height = key->height();
    entry.size_bytes = size;
    entry.last_access = ++clock_;
    size_bytes_ += size;
    cv_.notify_all();
  } else {
    auto entry = std::make_shared<Entry>();
    entry->value = std::move(value);
    entry->compute_seconds = compute_seconds;
    entry->height = key->height();
    entry->size_bytes = size;
    entry->last_access = ++clock_;
    auto ghost = ghost_refs_.find(key->hash());
    entry->refs = 1 + (ghost != ghost_refs_.end() ? ghost->second : 0);
    size_bytes_ += size;
    entries_.emplace(key, std::move(entry));
  }
  EvictUntilFits();
}

void LineageCache::Abort(const LineageItemPtr& key) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second->placeholder) {
    entries_.erase(it);
  }
  cv_.notify_all();
}

DataPtr LineageCache::Peek(const LineageItemPtr& key) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  std::shared_ptr<Entry> entry = it->second;
  if (entry->placeholder) return nullptr;
  if (entry->spilled) {
    if (!RestoreEntry(entry.get()).ok()) {
      DropSpillFile(entry.get());  // no orphan spill files on failure
      entries_.erase(it);
      return nullptr;
    }
    // Same pinning as Probe: eviction must not null the value being handed
    // out to the partial-rewrite matcher.
    DataPtr value = entry->value;
    entry->pinned = true;
    EvictUntilFits();
    entry->pinned = false;
    entry->refs++;
    entry->last_access = ++clock_;
    return value;
  }
  entry->refs++;
  entry->last_access = ++clock_;
  return entry->value;
}

DataPtr LineageCache::TryPartialReuse(const LineageItemPtr& key,
                                      const std::vector<DataPtr>& inputs,
                                      int kernel_threads) {
  return TryPartialRewrites(this, key, inputs, kernel_threads);
}

void LineageCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry->spilled) std::filesystem::remove(entry->spill_path);
  }
  entries_.clear();
  size_bytes_ = 0;
  cv_.notify_all();
}

int64_t LineageCache::NumEntries() const {
  std::unique_lock<std::mutex> lock(mu_);
  int64_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry->placeholder) ++count;
  }
  return count;
}

int64_t LineageCache::SizeInBytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return size_bytes_;
}

void LineageCache::SetBudget(int64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  config_.cache_budget_bytes = bytes;
  EvictUntilFits();
}

bool LineageCache::Contains(const LineageItemPtr& key) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && !it->second->placeholder;
}

}  // namespace lima
