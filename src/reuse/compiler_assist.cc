#include "reuse/compiler_assist.h"

#include <unordered_map>
#include <unordered_set>

#include "runtime/instruction_factory.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

/// The opcodes this pass pattern-matches on, interned once.
struct AssistOps {
  OpcodeId cbind = InternOpcode("cbind");
  OpcodeId mvvar = InternOpcode("mvvar");
  OpcodeId tsmm = InternOpcode("tsmm");
  OpcodeId rmvar = InternOpcode("rmvar");
};

const AssistOps& Op() {
  static const AssistOps* ops = new AssistOps();
  return *ops;
}

void UnmarkInBlocks(const std::vector<BlockPtr>& blocks,
                    const std::unordered_set<std::string>& carried);

void UnmarkInBlock(const ProgramBlock& block,
                   const std::unordered_set<std::string>& carried) {
  switch (block.kind()) {
    case BlockKind::kBasic: {
      const auto& basic = static_cast<const BasicBlock&>(block);
      for (const auto& instruction : basic.instructions()) {
        for (const std::string& out : instruction->OutputVars()) {
          if (carried.count(out) > 0) {
            const_cast<Instruction*>(instruction.get())
                ->set_reuse_marked(false);
            break;
          }
        }
      }
      break;
    }
    case BlockKind::kIf: {
      const auto& if_block = static_cast<const IfBlock&>(block);
      UnmarkInBlocks(if_block.then_blocks(), carried);
      UnmarkInBlocks(if_block.else_blocks(), carried);
      break;
    }
    case BlockKind::kFor:
    case BlockKind::kParFor:
      UnmarkInBlocks(static_cast<const ForBlock&>(block).body(), carried);
      break;
    case BlockKind::kWhile:
      UnmarkInBlocks(static_cast<const WhileBlock&>(block).body(), carried);
      break;
  }
}

void UnmarkInBlocks(const std::vector<BlockPtr>& blocks,
                    const std::unordered_set<std::string>& carried) {
  for (const BlockPtr& block : blocks) UnmarkInBlock(*block, carried);
}

void VisitLoops(std::vector<BlockPtr>* blocks) {
  for (BlockPtr& block : *blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic:
        break;
      case BlockKind::kIf: {
        auto* if_block = static_cast<IfBlock*>(block.get());
        VisitLoops(if_block->mutable_then_blocks());
        VisitLoops(if_block->mutable_else_blocks());
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        auto* loop = static_cast<ForBlock*>(block.get());
        const LoopDedupInfo& info = loop->dedup_info();
        std::unordered_set<std::string> carried;
        std::unordered_set<std::string> inputs(info.body_inputs.begin(),
                                               info.body_inputs.end());
        for (const std::string& out : info.body_outputs) {
          if (inputs.count(out) > 0) carried.insert(out);
        }
        if (!carried.empty()) UnmarkInBlocks(loop->body(), carried);
        VisitLoops(loop->mutable_body());
        break;
      }
      case BlockKind::kWhile: {
        auto* loop = static_cast<WhileBlock*>(block.get());
        const LoopDedupInfo& info = loop->dedup_info();
        std::unordered_set<std::string> carried;
        std::unordered_set<std::string> inputs(info.body_inputs.begin(),
                                               info.body_inputs.end());
        for (const std::string& out : info.body_outputs) {
          if (inputs.count(out) > 0) carried.insert(out);
        }
        if (!carried.empty()) UnmarkInBlocks(loop->body(), carried);
        VisitLoops(loop->mutable_body());
        break;
      }
    }
  }
}

using ReadCounts = std::unordered_map<std::string, int>;

void CountReadsInBlocks(const std::vector<BlockPtr>& blocks, ReadCounts* reads);

void CountReadsInBasic(const BasicBlock& block, ReadCounts* reads) {
  for (const auto& instruction : block.instructions()) {
    for (const std::string& var : instruction->InputVars()) (*reads)[var]++;
  }
}

void CountReadsInBlocks(const std::vector<BlockPtr>& blocks,
                        ReadCounts* reads) {
  for (const BlockPtr& block : blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic:
        CountReadsInBasic(static_cast<const BasicBlock&>(*block), reads);
        break;
      case BlockKind::kIf: {
        const auto& if_block = static_cast<const IfBlock&>(*block);
        CountReadsInBasic(if_block.predicate().block(), reads);
        (*reads)[if_block.predicate().result_var()]++;
        CountReadsInBlocks(if_block.then_blocks(), reads);
        CountReadsInBlocks(if_block.else_blocks(), reads);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        const auto& for_block = static_cast<const ForBlock&>(*block);
        CountReadsInBasic(for_block.from().block(), reads);
        (*reads)[for_block.from().result_var()]++;
        CountReadsInBasic(for_block.to().block(), reads);
        (*reads)[for_block.to().result_var()]++;
        CountReadsInBasic(for_block.incr().block(), reads);
        CountReadsInBlocks(for_block.body(), reads);
        break;
      }
      case BlockKind::kWhile: {
        const auto& while_block = static_cast<const WhileBlock&>(*block);
        CountReadsInBasic(while_block.predicate().block(), reads);
        (*reads)[while_block.predicate().result_var()]++;
        CountReadsInBlocks(while_block.body(), reads);
        break;
      }
    }
  }
}

// Rewrites `T = cbind(A, B); [mvvar T -> Z;] S = tsmm(Z or T)` into a single
// tsmm_cbind(A, B) when the cbind result has no other reader anywhere in the
// program — avoiding the cbind materialization entirely (Sec. 4.4, the
// stepLm recompilation rewrite).
void RewriteBasicBlock(BasicBlock* block, const ReadCounts& global_reads) {
  auto* instructions = block->mutable_instructions();
  struct Producer {
    size_t cbind_index;
    size_t mvvar_index;  // == cbind_index when no rename is involved
  };
  std::unordered_map<std::string, Producer> producers;
  for (size_t i = 0; i < instructions->size(); ++i) {
    Instruction* instruction = (*instructions)[i].get();
    if (instruction->opcode_id() == Op().cbind) {
      producers[instruction->OutputVars()[0]] = {i, i};
      continue;
    }
    if (instruction->opcode_id() == Op().mvvar) {
      const auto* move = static_cast<const VariableInstruction*>(instruction);
      auto it = producers.find(move->InputVars()[0]);
      if (it != producers.end()) {
        Producer p = it->second;
        p.mvvar_index = i;
        producers.erase(it);
        producers[move->OutputVars()[0]] = p;
      }
      continue;
    }
    if (instruction->opcode_id() != Op().tsmm) continue;
    const auto* tsmm = static_cast<const ComputationInstruction*>(instruction);
    const Operand& in = tsmm->operands()[0];
    if (in.is_literal) continue;
    auto producer = producers.find(in.name);
    if (producer == producers.end()) continue;
    auto reads = global_reads.find(in.name);
    if (reads == global_reads.end() || reads->second != 1) continue;

    const Producer p = producer->second;
    const auto* append = static_cast<const ComputationInstruction*>(
        (*instructions)[p.cbind_index].get());
    Operand a = append->operands()[0];
    Operand b = append->operands()[1];
    std::string out = tsmm->OutputVars()[0];
    // Factory-built so the rewrite target stays arity-checked against the
    // catalog like every other constructed instruction.
    (*instructions)[i] =
        *MakeInstruction(InternOpcode("tsmm_cbind"), {a, b}, {out});
    (*instructions)[p.cbind_index] = VariableInstruction::Remove({});
    if (p.mvvar_index != p.cbind_index) {
      // The composed variable is never materialized now; the rename goes
      // away entirely. (Its single read was the tsmm just replaced, so no
      // later instruction expects it.)
      (*instructions)[p.mvvar_index] = VariableInstruction::Remove({});
    }
    // The cbind operands now live until the tsmm_cbind executes: strip them
    // from any earlier statement-cleanup rmvar between producer and use,
    // then re-issue the removal right after the fused instruction so the
    // temporaries do not outlive their last use.
    std::vector<std::string> deferred;
    for (size_t k = p.cbind_index + 1; k < i; ++k) {
      Instruction* cleanup = (*instructions)[k].get();
      if (cleanup->opcode_id() != Op().rmvar) continue;
      const auto* remove = static_cast<const VariableInstruction*>(cleanup);
      std::vector<std::string> kept;
      bool changed = false;
      for (const std::string& name : remove->names()) {
        if ((!a.is_literal && name == a.name) ||
            (!b.is_literal && name == b.name)) {
          changed = true;
          deferred.push_back(name);
        } else {
          kept.push_back(name);
        }
      }
      if (changed) {
        (*instructions)[k] = VariableInstruction::Remove(std::move(kept));
      }
    }
    if (!deferred.empty()) {
      instructions->insert(
          instructions->begin() + i + 1,
          VariableInstruction::Remove(std::move(deferred)));
    }
    producers.erase(producer);
  }

  // Compact out the placeholder (empty) removes left by the rewrite.
  std::erase_if(*instructions, [](const std::unique_ptr<Instruction>& ins) {
    if (ins->opcode_id() != Op().rmvar) return false;
    return static_cast<const VariableInstruction&>(*ins).names().empty();
  });
}

void RewriteInBlocks(std::vector<BlockPtr>* blocks, const ReadCounts& reads) {
  for (BlockPtr& block : *blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic:
        RewriteBasicBlock(static_cast<BasicBlock*>(block.get()), reads);
        break;
      case BlockKind::kIf: {
        auto* if_block = static_cast<IfBlock*>(block.get());
        RewriteInBlocks(if_block->mutable_then_blocks(), reads);
        RewriteInBlocks(if_block->mutable_else_blocks(), reads);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor:
        RewriteInBlocks(static_cast<ForBlock*>(block.get())->mutable_body(), reads);
        break;
      case BlockKind::kWhile:
        RewriteInBlocks(static_cast<WhileBlock*>(block.get())->mutable_body(), reads);
        break;
    }
  }
}

}  // namespace

void UnmarkLoopCarriedInstructions(Program* program) {
  VisitLoops(program->mutable_main());
  for (const auto& [name, fn] : program->functions()) {
    VisitLoops(fn->mutable_body());
  }
}

void ApplyReuseAwareRewrites(Program* program) {
  // Scope-wide read counts make eliminating the cbind variable safe: it
  // must have no reader other than the tsmm being rewritten. Variables are
  // function-local, so counts are computed per scope.
  {
    ReadCounts reads;
    CountReadsInBlocks(program->main(), &reads);
    RewriteInBlocks(program->mutable_main(), reads);
  }
  for (const auto& [name, fn] : program->functions()) {
    ReadCounts reads;
    CountReadsInBlocks(fn->body(), &reads);
    RewriteInBlocks(fn->mutable_body(), reads);
  }
}

}  // namespace lima
