#include "reuse/coarse_cache.h"

#include "common/hash.h"

namespace lima {

uint64_t CoarseGrainedCache::Fingerprint(const DataPtr& data) {
  if (data == nullptr) return 0;
  switch (data->type()) {
    case DataType::kScalar: {
      const ScalarValue& v =
          static_cast<const ScalarData*>(data.get())->value();
      return HashBytes(v.EncodeLineageLiteral());
    }
    case DataType::kMatrix: {
      const MatrixPtr& m = static_cast<const MatrixData*>(data.get())->matrix();
      uint64_t h = HashCombine(HashInt(m->rows()), HashInt(m->cols()));
      // Sample up to 64 cells plus the corners; cheap but discriminative.
      int64_t n = m->size();
      if (n > 0) {
        int64_t stride = std::max<int64_t>(1, n / 64);
        for (int64_t i = 0; i < n; i += stride) {
          uint64_t bits;
          double v = m->data()[i];
          static_assert(sizeof(bits) == sizeof(v));
          __builtin_memcpy(&bits, &v, sizeof(bits));
          h = HashCombine(h, bits);
        }
        uint64_t last;
        double v = m->data()[n - 1];
        __builtin_memcpy(&last, &v, sizeof(last));
        h = HashCombine(h, last);
      }
      return h;
    }
    case DataType::kList: {
      const auto* list = static_cast<const ListData*>(data.get());
      uint64_t h = HashInt(list->size());
      for (const DataPtr& e : list->elements()) {
        h = HashCombine(h, Fingerprint(e));
      }
      return h;
    }
  }
  return 0;
}

std::string CoarseGrainedCache::MakeKey(
    const std::string& step, const std::vector<DataPtr>& inputs) const {
  std::string key = step;
  for (const DataPtr& in : inputs) {
    key += ':';
    key += std::to_string(Fingerprint(in));
  }
  return key;
}

std::optional<std::vector<DataPtr>> CoarseGrainedCache::Lookup(
    const std::string& step, const std::vector<DataPtr>& inputs) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(MakeKey(step, inputs));
  if (it == entries_.end()) {
    if (events_ != nullptr) events_->Record(CacheEventKind::kMiss, 0);
    return std::nullopt;
  }
  if (events_ != nullptr) {
    int64_t bytes = 0;
    for (const DataPtr& out : it->second) bytes += out->SizeInBytes();
    events_->Record(CacheEventKind::kHit, bytes);
  }
  return it->second;
}

void CoarseGrainedCache::Store(const std::string& step,
                               const std::vector<DataPtr>& inputs,
                               std::vector<DataPtr> outputs) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[MakeKey(step, inputs)] = std::move(outputs);
}

void CoarseGrainedCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

int64_t CoarseGrainedCache::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace lima
