#ifndef LIMA_REUSE_PARTIAL_REWRITES_H_
#define LIMA_REUSE_PARTIAL_REWRITES_H_

#include <vector>

#include "common/parallel.h"
#include "lineage/lineage_item.h"
#include "runtime/data.h"

namespace lima {

class LineageCache;

/// Partial-rewrite reuse (Sec. 4.2): probes an ordered list of hand-written
/// source-target patterns against the lineage of the *about-to-execute*
/// operation `key`. When a pattern matches and the required component is in
/// the cache, a compensation plan is executed and its result returned
/// (nullptr otherwise). Computed compensation intermediates are inserted
/// into the cache under their own lineage, enabling incremental chains
/// (e.g. stepLm).
///
/// Implemented meta-rewrites (with transpose/ones/index variants):
///   rbind(X,dX) %*% Y          -> rbind(XY, dX Y)
///   X %*% cbind(Y,dY)          -> cbind(XY, X dY)
///   X %*% cbind(Y,1)           -> cbind(XY, rowSums(X))
///   X %*% (Y[,l:u])            -> (XY)[,l:u]
///   t(cbind(A,B)) %*% y        -> rbind(t(A)y, t(B)y)
///   tsmm(rbind(X,dX))          -> tsmm(X) + tsmm(dX)
///   tsmm(cbind(X,dX))          -> [[tsmm(X), t(X)dX], [t(dX)X, tsmm(dX)]]
///   cbind(X,dX) (*) cbind(Y,dY)-> cbind(X*Y, dX*dY)   (any cellwise op)
///   colAgg(cbind(X,dX))        -> cbind(colAgg(X), colAgg(dX))
///   rowAgg(rbind(X,dX))        -> rbind(rowAgg(X), rowAgg(dX))
///
/// `inputs` are the resolved input values of the operation, positionally
/// aligned with key->inputs().
/// `par` carries the caller's parallelism-budget handle into the
/// compensation kernels (may be null: sequential).
DataPtr TryPartialRewrites(LineageCache* cache, const LineageItemPtr& key,
                           const std::vector<DataPtr>& inputs,
                           const ParallelContext* par);

}  // namespace lima

#endif  // LIMA_REUSE_PARTIAL_REWRITES_H_
