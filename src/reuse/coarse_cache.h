#ifndef LIMA_REUSE_COARSE_CACHE_H_
#define LIMA_REUSE_COARSE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/cache_events.h"
#include "runtime/data.h"

namespace lima {

/// Coarse-grained reuse baseline in the spirit of HELIX [Xin et al., VLDB
/// 2018] and the Collaborative Optimizer [Derakhshan et al., SIGMOD 2020]:
/// memoization of *top-level pipeline steps* keyed by the step name and
/// input fingerprints. It treats each step as a black box, so it cannot
/// exploit fine-grained or partial redundancy and cannot see internal
/// nondeterminism — exactly the limitation LIMA addresses (Fig. 1). Used as
/// the `Coarse` baseline in the Fig. 10 system-comparison benchmarks.
class CoarseGrainedCache {
 public:
  /// Content fingerprint of a value: dimensions plus a sampled cell hash.
  static uint64_t Fingerprint(const DataPtr& data);

  /// Cached outputs of `step` for these exact inputs, if memoized.
  std::optional<std::vector<DataPtr>> Lookup(
      const std::string& step, const std::vector<DataPtr>& inputs) const;

  /// Memoizes the step outputs.
  void Store(const std::string& step, const std::vector<DataPtr>& inputs,
             std::vector<DataPtr> outputs);

  void Clear();
  int64_t NumEntries() const;

  /// Attaches a structured cache-event log (hit/miss per Lookup); nullptr
  /// detaches.
  void set_event_log(CacheEventLog* events) { events_ = events; }

 private:
  std::string MakeKey(const std::string& step,
                      const std::vector<DataPtr>& inputs) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<DataPtr>> entries_;
  CacheEventLog* events_ = nullptr;
};

}  // namespace lima

#endif  // LIMA_REUSE_COARSE_CACHE_H_
