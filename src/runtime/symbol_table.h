#ifndef LIMA_RUNTIME_SYMBOL_TABLE_H_
#define LIMA_RUNTIME_SYMBOL_TABLE_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "runtime/data.h"

namespace lima {

/// Live-variable map of one execution context (Fig. 2). Values are shared
/// immutable handles, so copies (function calls, parfor workers) are cheap.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  void Set(const std::string& name, DataPtr value);

  /// Fails with RuntimeError("undefined variable") when absent.
  Result<DataPtr> Get(const std::string& name) const;

  /// nullptr when absent.
  DataPtr GetOrNull(const std::string& name) const;

  bool Contains(const std::string& name) const;
  void Remove(const std::string& name);
  void Move(const std::string& from, const std::string& to);
  void Copy(const std::string& from, const std::string& to);

  const std::unordered_map<std::string, DataPtr>& variables() const {
    return vars_;
  }

 private:
  std::unordered_map<std::string, DataPtr> vars_;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_SYMBOL_TABLE_H_
