#ifndef LIMA_RUNTIME_SYMBOL_TABLE_H_
#define LIMA_RUNTIME_SYMBOL_TABLE_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "runtime/data.h"
#include "runtime/stats.h"

namespace lima {

/// Live-variable map of one execution context (Fig. 2). Values are shared
/// immutable handles, so copies (function calls, parfor workers) are cheap.
///
/// A table can carry a RuntimeStats hook that tracks the summed matrix
/// bytes of its bindings (live_bytes / peak_live_bytes), cross-checking the
/// static memory estimator. Copies drop the hook: worker tables share their
/// parent's DataPtrs, so counting them would double-count allocations.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable& other) : vars_(other.vars_) {}
  SymbolTable& operator=(const SymbolTable& other) {
    vars_ = other.vars_;
    stats_ = nullptr;
    return *this;
  }
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  void Set(const std::string& name, DataPtr value);

  /// Fails with RuntimeError("undefined variable") when absent.
  Result<DataPtr> Get(const std::string& name) const;

  /// nullptr when absent.
  DataPtr GetOrNull(const std::string& name) const;

  bool Contains(const std::string& name) const;
  void Remove(const std::string& name);
  void Move(const std::string& from, const std::string& to);
  void Copy(const std::string& from, const std::string& to);

  const std::unordered_map<std::string, DataPtr>& variables() const {
    return vars_;
  }

  /// Installs the live-bytes accounting hook. Precondition: the table is
  /// empty (existing bindings would go uncounted).
  void set_stats(RuntimeStats* stats) { stats_ = stats; }

 private:
  int64_t BytesOf(const DataPtr& value) const;

  std::unordered_map<std::string, DataPtr> vars_;
  RuntimeStats* stats_ = nullptr;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_SYMBOL_TABLE_H_
