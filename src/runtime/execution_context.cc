#include "runtime/execution_context.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/hash.h"

namespace lima {

namespace {
std::atomic<int64_t> g_orphan_counter{0};
}  // namespace

ExecutionContext::ExecutionContext(const LimaConfig* config,
                                   const Program* program, ReuseCache* cache,
                                   DedupRegistry* dedup_registry,
                                   RuntimeStats* stats)
    : config_(config),
      program_(program),
      cache_(cache),
      dedup_registry_(dedup_registry),
      stats_(stats),
      parallel_(&ParallelBudget::Global()) {
  if (stats_ != nullptr) {
    parallel_.set_stats(&stats_->budget_grants, &stats_->budget_denials);
  }
}

std::ostream& ExecutionContext::print_stream() const {
  return print_stream_ != nullptr ? *print_stream_ : std::cout;
}

void ExecutionContext::SetVariable(const std::string& name, DataPtr value,
                                   LineageItemPtr item) {
  symbols_.Set(name, std::move(value));
  if (!tracing_enabled()) return;
  if (item == nullptr) {
    // Unique orphan leaf: distinct untraced values never alias.
    static const OpcodeId kOrphanId = InternOpcode("orphan");
    item = LineageItem::Create(
        kOrphanId, {},
        std::to_string(g_orphan_counter.fetch_add(1,
                                                  std::memory_order_relaxed)));
  }
  lineage_.Set(name, std::move(item));
}

namespace {

/// Sampled content fingerprint of an external input. The paper assumes
/// inputs are immutable (Sec. 3.4); for the session API, where a name can
/// be re-bound to different data, the fingerprint keeps distinct inputs
/// from aliasing in the reuse cache.
uint64_t InputFingerprint(const DataPtr& value) {
  if (value->type() != DataType::kMatrix) {
    return HashInt(static_cast<uint64_t>(value->SizeInBytes()));
  }
  const MatrixPtr& m = static_cast<const MatrixData*>(value.get())->matrix();
  uint64_t h = HashCombine(HashInt(m->rows()), HashInt(m->cols()));
  int64_t n = m->size();
  int64_t stride = std::max<int64_t>(1, n / 64);
  for (int64_t i = 0; i < n; i += stride) {
    uint64_t bits;
    double v = m->data()[i];
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

}  // namespace

void ExecutionContext::BindInput(const std::string& name, DataPtr value) {
  uint64_t fingerprint = tracing_enabled() ? InputFingerprint(value) : 0;
  int64_t rows = -1;
  int64_t cols = -1;
  if (value->type() == DataType::kMatrix) {
    const MatrixPtr& m = static_cast<const MatrixData*>(value.get())->matrix();
    rows = m->rows();
    cols = m->cols();
  }
  symbols_.Set(name, std::move(value));
  if (tracing_enabled()) {
    // The fingerprint rides along as a literal input; the item's data stays
    // the plain name (reconstruction binds inputs by name).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "S%016llx",
                  static_cast<unsigned long long>(fingerprint));
    static const OpcodeId kReadId = InternOpcode("read");
    LineageItemPtr item = LineageItem::Create(
        kReadId, {lineage_.GetOrCreateLiteral(buf)}, name);
    if (rows >= 0) item->RecordDims(rows, cols);
    lineage_.Set(name, std::move(item));
  }
}

std::shared_ptr<Matrix> ExecutionContext::TryStealBuffer(
    const std::string& name, const std::vector<DataPtr>& inputs,
    size_t operand_index) {
  if (!config_->inplace_rewrites) return nullptr;
  if (operand_index >= inputs.size()) return nullptr;
  const DataPtr& input = inputs[operand_index];
  if (input == nullptr || input->type() != DataType::kMatrix) return nullptr;
  // The binding must still be the very object we resolved — a concurrent
  // rebinding (or a liveness mask that went stale) disqualifies the steal.
  DataPtr bound = symbols_.GetOrNull(name);
  if (bound.get() != input.get()) return nullptr;
  // Census of every reference we hold ourselves: the symbol-table binding,
  // the local `bound` copy, and each occurrence in `inputs`. Any reference
  // beyond these belongs to someone who may observe the buffer — a reuse
  // cache entry, a cpvar alias, another session sharing the cache, a parfor
  // worker's table copy — and vetoes in-place execution.
  long expected = 2;
  for (const DataPtr& in : inputs) {
    if (in.get() == input.get()) ++expected;
  }
  if (input.use_count() != expected) return nullptr;
  const auto* mdata = static_cast<const MatrixData*>(input.get());
  if (mdata->matrix().use_count() != 1) return nullptr;  // shared Matrix handle
  std::shared_ptr<Matrix> stolen =
      std::const_pointer_cast<Matrix>(mdata->matrix());
  // Drop the binding now: liveness proved the name dead after this op, and
  // the mutated buffer must never be reachable under the old name.
  symbols_.Remove(name);
  bound.reset();
  // Post-condition of the census: only `inputs` and the MatrixData's own
  // handle (+ our stolen copy) remain. A violation means a cached value
  // escaped into a mutation — the exact bug the refcount audit guards.
  LIMA_CHECK(input.use_count() == expected - 2);
  LIMA_CHECK(stolen.use_count() == 2);
  if (stats_ != nullptr) {
    stats_->inplace_ops.fetch_add(1, std::memory_order_relaxed);
  }
  return stolen;
}

ExecutionContext ExecutionContext::MakeFunctionContext() const {
  ExecutionContext child(config_, program_, cache_, dedup_registry_, stats_);
  child.print_stream_ = print_stream_;
  child.profiler_ = profiler_;  // same thread, same collector
  child.call_depth_ = call_depth_ + 1;
  // Fresh symbols and lineage (function-local); no tracer (dedup loops are
  // last-level and never contain function calls).
  return child;
}

ExecutionContext ExecutionContext::MakeWorkerContext() const {
  ExecutionContext child(config_, program_, cache_, dedup_registry_, stats_);
  child.print_stream_ = print_stream_;
  child.symbols_ = symbols_;
  child.lineage_ = lineage_;
  child.call_depth_ = call_depth_;
  // The worker inherits the shared budget through the ctor: its kernels ask
  // for a fair share at call time instead of being pinned to one thread
  // (the worker's own leased unit counts against the shares it is offered).
  // profiler_ stays null: ProfileCollector is not thread-safe, so ParForBlock
  // assigns each worker its own collector and merges them at the join.
  return child;
}

}  // namespace lima
