#ifndef LIMA_RUNTIME_INSTRUCTIONS_COMPUTE_H_
#define LIMA_RUNTIME_INSTRUCTIONS_COMPUTE_H_

#include <string>
#include <vector>

#include "matrix/elementwise.h"
#include "runtime/instruction.h"

namespace lima {

/// Cell-wise binary operation over any scalar/matrix operand combination.
/// Opcode equals BinaryOpName(op) ("+", "*", "<=", ...).
class BinaryInstruction : public ComputationInstruction {
 public:
  BinaryInstruction(BinaryOp op, Operand lhs, Operand rhs, std::string output);

  BinaryOp op() const { return op_; }

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  BinaryOp op_;
};

/// Cell-wise unary operation (matrix or scalar operand).
class UnaryInstruction : public ComputationInstruction {
 public:
  UnaryInstruction(UnaryOp op, Operand input, std::string output);

  UnaryOp op() const { return op_; }

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  UnaryOp op_;
};

/// Full/column/row aggregates. Opcodes: sum, mean, ua_min, ua_max, trace,
/// colSums, colMeans, colMins, colMaxs, colVars, rowSums, rowMeans, rowMins,
/// rowMaxs, rowIndexMax.
class AggregateInstruction : public ComputationInstruction {
 public:
  AggregateInstruction(std::string opcode, Operand input, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Metadata lookups: nrow, ncol, length (matrix cell count / list length).
class MetadataInstruction : public ComputationInstruction {
 public:
  MetadataInstruction(std::string opcode, Operand input, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Casts: "castdts" (as.scalar: 1x1 matrix -> scalar), "castsdm"
/// (as.matrix: scalar -> 1x1 matrix).
class CastInstruction : public ComputationInstruction {
 public:
  CastInstruction(std::string opcode, Operand input, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// ifelse(C, A, B): cell-wise ternary with R-style broadcasting across all
/// three operands; scalars broadcast fully.
class IfElseInstruction : public ComputationInstruction {
 public:
  IfElseInstruction(Operand condition, Operand then_value, Operand else_value,
                    std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// toString(X): renders a value into a string scalar.
class ToStringInstruction : public ComputationInstruction {
 public:
  ToStringInstruction(Operand input, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Scalar-scalar binary semantics shared with the fused-operator runtime.
Result<ScalarValue> ScalarBinary(BinaryOp op, const ScalarValue& a,
                                 const ScalarValue& b);
Result<ScalarValue> ScalarUnary(UnaryOp op, const ScalarValue& v);

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTIONS_COMPUTE_H_
