#ifndef LIMA_RUNTIME_SCALAR_H_
#define LIMA_RUNTIME_SCALAR_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace lima {

/// Scalar value kinds supported by the DSL (DML value types).
enum class ScalarKind { kDouble, kInt, kBool, kString };

/// A typed scalar runtime value. Numeric kinds interoperate (AsDouble/AsInt
/// coerce); strings only support concatenation and comparison.
class ScalarValue {
 public:
  /// Default: double 0.0.
  ScalarValue() : kind_(ScalarKind::kDouble), num_(0.0) {}

  static ScalarValue Double(double v);
  static ScalarValue Int(int64_t v);
  static ScalarValue Bool(bool v);
  static ScalarValue String(std::string v);

  ScalarKind kind() const { return kind_; }
  bool is_numeric() const { return kind_ != ScalarKind::kString; }
  bool is_string() const { return kind_ == ScalarKind::kString; }

  /// Numeric coercions; CHECK-fails on strings (callers type-check first).
  double AsDouble() const;
  int64_t AsInt() const;
  bool AsBool() const;
  const std::string& AsString() const;

  /// Human-readable rendering (print/toString).
  std::string ToDisplayString() const;

  /// Type-faithful, round-trippable encoding used for lineage literals,
  /// e.g. "D3.5", "I42", "Btrue", "Sfoo".
  std::string EncodeLineageLiteral() const;

  /// Parses an EncodeLineageLiteral() string back into a value.
  static Result<ScalarValue> DecodeLineageLiteral(const std::string& encoded);

  bool operator==(const ScalarValue& other) const;

 private:
  ScalarKind kind_;
  double num_ = 0.0;  ///< numeric storage (double/int/bool)
  std::string str_;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_SCALAR_H_
