#include "runtime/reconstruct.h"

#include <unordered_map>
#include <unordered_set>

#include "runtime/fused_op.h"
#include "runtime/instructions_compute.h"
#include "runtime/instructions_datagen.h"
#include "runtime/instructions_matrix.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

const std::unordered_map<std::string, BinaryOp>& BinaryOpsByName() {
  static const auto* kMap = new std::unordered_map<std::string, BinaryOp>{
      {"+", BinaryOp::kAdd},   {"-", BinaryOp::kSub},
      {"*", BinaryOp::kMul},   {"/", BinaryOp::kDiv},
      {"^", BinaryOp::kPow},   {"min", BinaryOp::kMin},
      {"max", BinaryOp::kMax}, {"==", BinaryOp::kEq},
      {"!=", BinaryOp::kNeq},  {"<", BinaryOp::kLt},
      {">", BinaryOp::kGt},    {"<=", BinaryOp::kLe},
      {">=", BinaryOp::kGe},   {"&", BinaryOp::kAnd},
      {"|", BinaryOp::kOr},    {"%%", BinaryOp::kMod},
      {"%/%", BinaryOp::kIntDiv}};
  return *kMap;
}

const std::unordered_map<std::string, UnaryOp>& UnaryOpsByName() {
  static const auto* kMap = new std::unordered_map<std::string, UnaryOp>{
      {"exp", UnaryOp::kExp},     {"log", UnaryOp::kLog},
      {"sqrt", UnaryOp::kSqrt},   {"abs", UnaryOp::kAbs},
      {"round", UnaryOp::kRound}, {"floor", UnaryOp::kFloor},
      {"ceil", UnaryOp::kCeil},   {"sign", UnaryOp::kSign},
      {"uminus", UnaryOp::kNeg},  {"!", UnaryOp::kNot},
      {"sigmoid", UnaryOp::kSigmoid}};
  return *kMap;
}

bool IsAggregateOpcode(const std::string& op) {
  static const auto* kSet = new std::unordered_set<std::string>{
      "sum",      "mean",    "ua_min",  "ua_max",  "trace",
      "colSums",  "colMeans", "colMins", "colMaxs", "colVars",
      "rowSums",  "rowMeans", "rowMins", "rowMaxs", "rowIndexMax"};
  return kSet->count(op) > 0;
}

/// Builds one instruction for a non-leaf, non-dedup lineage node.
Result<std::unique_ptr<Instruction>> MakeInstruction(
    const std::string& opcode, const std::vector<Operand>& in,
    const std::string& out) {
  auto bin = BinaryOpsByName().find(opcode);
  if (bin != BinaryOpsByName().end() && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new BinaryInstruction(bin->second, in[0], in[1], out));
  }
  auto un = UnaryOpsByName().find(opcode);
  if (un != UnaryOpsByName().end() && in.size() == 1) {
    return std::unique_ptr<Instruction>(
        new UnaryInstruction(un->second, in[0], out));
  }
  if (IsAggregateOpcode(opcode) && in.size() == 1) {
    return std::unique_ptr<Instruction>(
        new AggregateInstruction(opcode, in[0], out));
  }
  if (opcode == "mm" && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new MatMulInstruction(in[0], in[1], out));
  }
  if (opcode == "tsmm" && in.size() == 1) {
    return std::unique_ptr<Instruction>(new TsmmInstruction(in[0], out));
  }
  if ((opcode == "t" || opcode == "rev" || opcode == "diag") &&
      in.size() == 1) {
    return std::unique_ptr<Instruction>(
        new ReorgInstruction(opcode, in[0], out));
  }
  if (opcode == "reshape" && in.size() == 3) {
    return std::unique_ptr<Instruction>(
        new ReshapeInstruction(in[0], in[1], in[2], out));
  }
  if ((opcode == "cbind" || opcode == "rbind") && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new AppendInstruction(opcode == "cbind", in[0], in[1], out));
  }
  if (opcode == "rightindex" && in.size() == 5) {
    return std::unique_ptr<Instruction>(
        new RightIndexInstruction(in[0], in[1], in[2], in[3], in[4], out));
  }
  if (opcode == "leftindex" && in.size() == 6) {
    return std::unique_ptr<Instruction>(new LeftIndexInstruction(
        in[0], in[1], in[2], in[3], in[4], in[5], out));
  }
  if ((opcode == "selcols" || opcode == "selrows") && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new SelectInstruction(opcode == "selcols", in[0], in[1], out));
  }
  if (opcode == "solve" && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new SolveInstruction(in[0], in[1], out));
  }
  if (opcode == "cholesky" && in.size() == 1) {
    return std::unique_ptr<Instruction>(new CholeskyInstruction(in[0], out));
  }
  if (opcode == "table" && in.size() == 4) {
    return std::unique_ptr<Instruction>(
        new TableInstruction(in[0], in[1], in[2], in[3], out));
  }
  if (opcode == "order" && in.size() == 3) {
    return std::unique_ptr<Instruction>(
        new OrderInstruction(in[0], in[1], in[2], out));
  }
  if (opcode == "rand" || opcode == "sample" || opcode == "seq" ||
      opcode == "fill") {
    return std::unique_ptr<Instruction>(
        new DataGenInstruction(opcode, in, out));
  }
  if ((opcode == "nrow" || opcode == "ncol" || opcode == "length") &&
      in.size() == 1) {
    return std::unique_ptr<Instruction>(
        new MetadataInstruction(opcode, in[0], out));
  }
  if ((opcode == "castdts" || opcode == "castsdm") && in.size() == 1) {
    return std::unique_ptr<Instruction>(
        new CastInstruction(opcode, in[0], out));
  }
  if (opcode == "ifelse" && in.size() == 3) {
    return std::unique_ptr<Instruction>(
        new IfElseInstruction(in[0], in[1], in[2], out));
  }
  if (opcode == "toString" && in.size() == 1) {
    return std::unique_ptr<Instruction>(new ToStringInstruction(in[0], out));
  }
  if (opcode == "list") {
    return std::unique_ptr<Instruction>(new ListInstruction(in, out));
  }
  if (opcode == "listidx" && in.size() == 2) {
    return std::unique_ptr<Instruction>(
        new ListIndexInstruction(in[0], in[1], out));
  }
  if (opcode == "cpvar" && in.size() == 1 && !in[0].is_literal) {
    return std::unique_ptr<Instruction>(
        VariableInstruction::Copy(in[0].name, out).release());
  }
  return Status::NotImplemented("reconstruct: unsupported opcode '" + opcode +
                                "' with " + std::to_string(in.size()) +
                                " inputs");
}

Operand LiteralOperandFromData(const std::string& data) {
  Result<ScalarValue> decoded = ScalarValue::DecodeLineageLiteral(data);
  return decoded.ok() ? Operand::Lit(std::move(decoded).ValueOrDie())
                      : Operand::LitString(data);
}

/// Compiles a dedup patch into a function (params = placeholders, outputs =
/// "out<i>").
Result<std::unique_ptr<Function>> CompilePatchFunction(
    const DedupPatch& patch) {
  std::vector<Function::Param> params;
  for (int i = 0; i < patch.num_placeholders(); ++i) {
    params.push_back({"p" + std::to_string(i), false, ScalarValue()});
  }
  std::vector<std::string> outputs;
  for (int i = 0; i < patch.num_outputs(); ++i) {
    outputs.push_back("out" + std::to_string(i));
  }
  auto fn = std::make_unique<Function>("patch_" + patch.name(),
                                       std::move(params), outputs);
  auto body = std::make_unique<BasicBlock>();
  auto node_operand = [&](int64_t ref) -> Operand {
    if (ref < 0) return Operand::Var("p" + std::to_string(-(ref + 1)));
    return Operand::Var("n" + std::to_string(ref));
  };
  for (size_t i = 0; i < patch.nodes().size(); ++i) {
    const DedupPatch::Node& node = patch.nodes()[i];
    std::string out_var = "n" + std::to_string(i);
    if (node.opcode == LineageItem::kLiteralOpcode) {
      Operand lit = LiteralOperandFromData(node.data);
      body->Append(std::make_unique<AssignLiteralInstruction>(lit.literal,
                                                              out_var));
      continue;
    }
    std::vector<Operand> in;
    for (int64_t ref : node.inputs) in.push_back(node_operand(ref));
    LIMA_ASSIGN_OR_RETURN(std::unique_ptr<Instruction> instruction,
                          MakeInstruction(node.opcode, in, out_var));
    body->Append(std::move(instruction));
  }
  // Bind patch outputs to the function output names.
  auto bind = std::make_unique<BasicBlock>();
  for (int i = 0; i < patch.num_outputs(); ++i) {
    bind->Append(VariableInstruction::Copy(
        "n" + std::to_string(patch.output_roots()[i]),
        "out" + std::to_string(i)));
  }
  fn->mutable_body()->push_back(std::move(body));
  fn->mutable_body()->push_back(std::move(bind));
  return fn;
}

}  // namespace

Result<ReconstructedProgram> ReconstructProgram(const LineageItemPtr& root) {
  auto program = std::make_unique<Program>();
  auto block = std::make_unique<BasicBlock>();
  std::vector<std::string> input_names;
  std::unordered_set<std::string> inputs_seen;
  std::unordered_map<const LineageItem*, std::string> var_of;
  std::unordered_set<std::string> patch_functions;
  // (patch name + input vars) -> per-call output variable names.
  std::unordered_map<std::string, std::vector<std::string>> dedup_calls;

  // Iterative post-order over the DAG.
  struct Frame {
    const LineageItem* item;
    size_t next_input;
  };
  std::vector<Frame> stack{{root.get(), 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const LineageItem* item = frame.item;
    if (var_of.count(item) > 0) {
      stack.pop_back();
      continue;
    }
    if (frame.next_input < item->inputs().size()) {
      const LineageItem* input = item->inputs()[frame.next_input++].get();
      if (var_of.count(input) == 0) stack.push_back({input, 0});
      continue;
    }
    stack.pop_back();
    const std::string var = "t" + std::to_string(item->id());

    if (item->opcode() == "read") {
      // External input: bound by the caller under the original name.
      var_of[item] = item->data();
      if (inputs_seen.insert(item->data()).second) {
        input_names.push_back(item->data());
      }
      continue;
    }
    if (item->is_literal()) {
      Operand lit = LiteralOperandFromData(item->data());
      block->Append(
          std::make_unique<AssignLiteralInstruction>(lit.literal, var));
      var_of[item] = var;
      continue;
    }
    if (item->opcode() == "orphan" || item->is_placeholder()) {
      return Status::Invalid(
          "reconstruct: lineage contains untracked (orphan/placeholder) "
          "leaves");
    }
    if (item->opcode() == "parfor-merge") {
      return Status::NotImplemented(
          "reconstruct: parfor-merge nodes are not reconstructible; "
          "reconstruct the per-worker roots instead");
    }

    if (item->is_dedup()) {
      const DedupPatch& patch = *item->patch();
      if (patch_functions.insert(patch.name()).second) {
        LIMA_ASSIGN_OR_RETURN(std::unique_ptr<Function> fn,
                              CompilePatchFunction(patch));
        program->AddFunction(std::move(fn));
      }
      std::vector<Operand> args;
      std::string call_key = patch.name();
      for (const LineageItemPtr& input : item->inputs()) {
        const std::string& in_var = var_of.at(input.get());
        args.push_back(Operand::Var(in_var));
        call_key += "|" + in_var;
      }
      auto call_it = dedup_calls.find(call_key);
      if (call_it == dedup_calls.end()) {
        std::vector<std::string> out_vars;
        for (int i = 0; i < patch.num_outputs(); ++i) {
          out_vars.push_back(var + "_o" + std::to_string(i));
        }
        block->Append(std::make_unique<FunctionCallInstruction>(
            "patch_" + patch.name(), args, out_vars));
        call_it = dedup_calls.emplace(call_key, std::move(out_vars)).first;
      }
      var_of[item] = call_it->second[item->dedup_output_index()];
      continue;
    }

    // Multi-output instructions (";o<k>" data suffix): currently eigen.
    if (item->opcode() == "eigen") {
      std::string call_key = "eigen";
      std::vector<Operand> in;
      for (const LineageItemPtr& input : item->inputs()) {
        const std::string& in_var = var_of.at(input.get());
        in.push_back(Operand::Var(in_var));
        call_key += "|" + in_var;
      }
      auto call_it = dedup_calls.find(call_key);
      if (call_it == dedup_calls.end()) {
        std::vector<std::string> out_vars{var + "_o0", var + "_o1"};
        block->Append(std::make_unique<EigenInstruction>(in[0], out_vars[0],
                                                         out_vars[1]));
        call_it = dedup_calls.emplace(call_key, std::move(out_vars)).first;
      }
      int out_index = item->data() == ";o1" ? 1 : 0;
      var_of[item] = call_it->second[out_index];
      continue;
    }

    std::vector<Operand> in;
    for (const LineageItemPtr& input : item->inputs()) {
      in.push_back(Operand::Var(var_of.at(input.get())));
    }
    LIMA_ASSIGN_OR_RETURN(std::unique_ptr<Instruction> instruction,
                          MakeInstruction(item->opcode(), in, var));
    block->Append(std::move(instruction));
    var_of[item] = var;
  }

  ReconstructedProgram out;
  out.output_var = var_of.at(root.get());
  program->mutable_main()->push_back(std::move(block));
  out.program = std::move(program);
  out.input_names = std::move(input_names);
  return out;
}

}  // namespace lima
