#include "runtime/reconstruct.h"

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "runtime/instruction_factory.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

// Lineage-internal opcodes the replayer treats structurally. Interned once;
// all comparisons below are id equality, not string matching. Everything
// executable goes through the catalog-driven factory, so reconstruct holds
// no opcode->semantics knowledge of its own.
OpcodeId ReadId() {
  static const OpcodeId id = InternOpcode("read");
  return id;
}
OpcodeId OrphanId() {
  static const OpcodeId id = InternOpcode("orphan");
  return id;
}
OpcodeId ParforMergeId() {
  static const OpcodeId id = InternOpcode("parfor-merge");
  return id;
}

Operand LiteralOperandFromData(const std::string& data) {
  Result<ScalarValue> decoded = ScalarValue::DecodeLineageLiteral(data);
  return decoded.ok() ? Operand::Lit(std::move(decoded).ValueOrDie())
                      : Operand::LitString(data);
}

/// Parses the ";o<k>" data suffix of a multi-output lineage item.
int MultiOutputIndex(const std::string& data) {
  if (data.size() < 3 || data[0] != ';' || data[1] != 'o') return 0;
  return std::atoi(data.c_str() + 2);
}

/// Compiles a dedup patch into a function (params = placeholders, outputs =
/// "out<i>").
Result<std::unique_ptr<Function>> CompilePatchFunction(
    const DedupPatch& patch) {
  std::vector<Function::Param> params;
  for (int i = 0; i < patch.num_placeholders(); ++i) {
    params.push_back({"p" + std::to_string(i), false, ScalarValue()});
  }
  std::vector<std::string> outputs;
  for (int i = 0; i < patch.num_outputs(); ++i) {
    outputs.push_back("out" + std::to_string(i));
  }
  auto fn = std::make_unique<Function>("patch_" + patch.name(),
                                       std::move(params), outputs);
  auto body = std::make_unique<BasicBlock>();
  auto node_operand = [&](int64_t ref) -> Operand {
    if (ref < 0) return Operand::Var("p" + std::to_string(-(ref + 1)));
    return Operand::Var("n" + std::to_string(ref));
  };
  for (size_t i = 0; i < patch.nodes().size(); ++i) {
    const DedupPatch::Node& node = patch.nodes()[i];
    const OpcodeId node_id = patch.node_ids()[i];
    std::string out_var = "n" + std::to_string(i);
    if (node_id == LineageItem::LiteralId()) {
      Operand lit = LiteralOperandFromData(node.data);
      body->Append(std::make_unique<AssignLiteralInstruction>(lit.literal,
                                                              out_var));
      continue;
    }
    std::vector<Operand> in;
    for (int64_t ref : node.inputs) in.push_back(node_operand(ref));
    LIMA_ASSIGN_OR_RETURN(
        std::unique_ptr<Instruction> instruction,
        MakeInstruction(node_id, std::move(in), {std::move(out_var)}));
    body->Append(std::move(instruction));
  }
  // Bind patch outputs to the function output names.
  auto bind = std::make_unique<BasicBlock>();
  for (int i = 0; i < patch.num_outputs(); ++i) {
    bind->Append(VariableInstruction::Copy(
        "n" + std::to_string(patch.output_roots()[i]),
        "out" + std::to_string(i)));
  }
  fn->mutable_body()->push_back(std::move(body));
  fn->mutable_body()->push_back(std::move(bind));
  return fn;
}

}  // namespace

Result<ReconstructedProgram> ReconstructProgram(const LineageItemPtr& root) {
  auto program = std::make_unique<Program>();
  auto block = std::make_unique<BasicBlock>();
  std::vector<std::string> input_names;
  std::unordered_set<std::string> inputs_seen;
  std::unordered_map<const LineageItem*, std::string> var_of;
  std::unordered_set<std::string> patch_functions;
  // (patch name + input vars) -> per-call output variable names; shared with
  // multi-output instructions ((opcode + input vars) -> output variables) so
  // sibling outputs replay one instruction.
  std::unordered_map<std::string, std::vector<std::string>> dedup_calls;

  // Iterative post-order over the DAG.
  struct Frame {
    const LineageItem* item;
    size_t next_input;
  };
  std::vector<Frame> stack{{root.get(), 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const LineageItem* item = frame.item;
    if (var_of.count(item) > 0) {
      stack.pop_back();
      continue;
    }
    if (frame.next_input < item->inputs().size()) {
      const LineageItem* input = item->inputs()[frame.next_input++].get();
      if (var_of.count(input) == 0) stack.push_back({input, 0});
      continue;
    }
    stack.pop_back();
    const std::string var = "t" + std::to_string(item->id());

    if (item->opcode_id() == ReadId()) {
      // External input: bound by the caller under the original name.
      var_of[item] = item->data();
      if (inputs_seen.insert(item->data()).second) {
        input_names.push_back(item->data());
      }
      continue;
    }
    if (item->is_literal()) {
      Operand lit = LiteralOperandFromData(item->data());
      block->Append(
          std::make_unique<AssignLiteralInstruction>(lit.literal, var));
      var_of[item] = var;
      continue;
    }
    if (item->opcode_id() == OrphanId() || item->is_placeholder()) {
      return Status::Invalid(
          "reconstruct: lineage contains untracked (orphan/placeholder) "
          "leaves");
    }
    if (item->opcode_id() == ParforMergeId()) {
      return Status::NotImplemented(
          "reconstruct: parfor-merge nodes are not reconstructible; "
          "reconstruct the per-worker roots instead");
    }

    if (item->is_dedup()) {
      const DedupPatch& patch = *item->patch();
      if (patch_functions.insert(patch.name()).second) {
        LIMA_ASSIGN_OR_RETURN(std::unique_ptr<Function> fn,
                              CompilePatchFunction(patch));
        program->AddFunction(std::move(fn));
      }
      std::vector<Operand> args;
      std::string call_key = patch.name();
      for (const LineageItemPtr& input : item->inputs()) {
        const std::string& in_var = var_of.at(input.get());
        args.push_back(Operand::Var(in_var));
        call_key += "|" + in_var;
      }
      auto call_it = dedup_calls.find(call_key);
      if (call_it == dedup_calls.end()) {
        std::vector<std::string> out_vars;
        for (int i = 0; i < patch.num_outputs(); ++i) {
          out_vars.push_back(var + "_o" + std::to_string(i));
        }
        block->Append(std::make_unique<FunctionCallInstruction>(
            "patch_" + patch.name(), args, out_vars));
        call_it = dedup_calls.emplace(call_key, std::move(out_vars)).first;
      }
      var_of[item] = call_it->second[item->dedup_output_index()];
      continue;
    }

    std::vector<Operand> in;
    std::string call_key;
    for (const LineageItemPtr& input : item->inputs()) {
      const std::string& in_var = var_of.at(input.get());
      in.push_back(Operand::Var(in_var));
      call_key += "|" + in_var;
    }

    // Multi-output instructions trace one item per output, distinguished by
    // the ";o<k>" data suffix; siblings share one replayed instruction. The
    // catalog says which opcodes these are — no per-opcode code here.
    const OpcodeEffect* effect = LookupOpcode(item->opcode_id());
    if (effect != nullptr && effect->num_outputs > 1) {
      call_key = item->opcode() + call_key;
      auto call_it = dedup_calls.find(call_key);
      if (call_it == dedup_calls.end()) {
        std::vector<std::string> out_vars;
        for (int i = 0; i < effect->num_outputs; ++i) {
          out_vars.push_back(var + "_o" + std::to_string(i));
        }
        LIMA_ASSIGN_OR_RETURN(
            std::unique_ptr<Instruction> instruction,
            MakeInstruction(item->opcode_id(), std::move(in), out_vars));
        block->Append(std::move(instruction));
        call_it = dedup_calls.emplace(call_key, std::move(out_vars)).first;
      }
      var_of[item] = call_it->second[MultiOutputIndex(item->data())];
      continue;
    }

    LIMA_ASSIGN_OR_RETURN(
        std::unique_ptr<Instruction> instruction,
        MakeInstruction(item->opcode_id(), std::move(in), {var}));
    block->Append(std::move(instruction));
    var_of[item] = var;
  }

  ReconstructedProgram out;
  out.output_var = var_of.at(root.get());
  program->mutable_main()->push_back(std::move(block));
  out.program = std::move(program);
  out.input_names = std::move(input_names);
  return out;
}

}  // namespace lima
