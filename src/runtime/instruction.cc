#include "runtime/instruction.h"

#include "common/timer.h"

namespace lima {

Result<DataPtr> ResolveOperand(ExecutionContext* ctx, const Operand& op) {
  if (op.is_literal) return MakeScalarData(op.literal);
  return ctx->symbols().Get(op.name);
}

LineageItemPtr ResolveOperandLineage(ExecutionContext* ctx,
                                     const Operand& op) {
  if (op.is_literal) {
    return ctx->lineage().GetOrCreateLiteral(op.literal.EncodeLineageLiteral());
  }
  LineageItemPtr item = ctx->lineage().Get(op.name);
  if (item == nullptr) {
    // Stabilize untracked variables with a unique orphan leaf.
    static std::atomic<int64_t> counter{0};
    static const OpcodeId kOrphanId = InternOpcode("orphan");
    item = LineageItem::Create(
        kOrphanId, {},
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
    ctx->lineage().Set(op.name, item);
  }
  return item;
}

std::string Instruction::ToString() const { return opcode(); }

std::vector<std::string> ComputationInstruction::InputVars() const {
  std::vector<std::string> vars;
  for (const Operand& op : operands_) {
    if (!op.is_literal) vars.push_back(op.name);
  }
  return vars;
}

std::string ComputationInstruction::ToString() const {
  std::string out = opcode();
  for (const Operand& op : operands_) {
    out += " ";
    out += op.DebugString();
  }
  out += " ->";
  for (const std::string& o : outputs_) {
    out += " ";
    out += o;
  }
  return out;
}

std::vector<LineageItemPtr> ComputationInstruction::BuildLineage(
    ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  std::vector<LineageItemPtr> items;
  if (outputs_.size() == 1) {
    items.push_back(LineageItem::Create(opcode_id_, input_items));
  } else {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      items.push_back(
          LineageItem::Create(opcode_id_, input_items, ";o" + std::to_string(i)));
    }
  }
  return items;
}

Status ComputationInstruction::Execute(ExecutionContext* ctx) const {
  RuntimeStats* stats = ctx->stats();
  if (stats != nullptr) {
    stats->instructions_executed.fetch_add(1, std::memory_order_relaxed);
  }

  ExecState state;
  LIMA_RETURN_NOT_OK(PrepareExec(ctx, &state));

  // Resolve input values.
  std::vector<DataPtr> inputs;
  inputs.reserve(operands_.size());
  bool any_matrix_input = false;
  for (const Operand& op : operands_) {
    LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, op));
    any_matrix_input |= value->type() != DataType::kScalar;
    inputs.push_back(std::move(value));
  }

  // Trace lineage before execution (enables reuse, Sec. 3.1 fn. 2).
  std::vector<LineageItemPtr> out_items;
  if (ctx->lineage_active()) {
    std::vector<LineageItemPtr> in_items;
    in_items.reserve(operands_.size());
    for (const Operand& op : operands_) {
      in_items.push_back(ResolveOperandLineage(ctx, op));
    }
    out_items = BuildLineage(ctx, in_items, state);
    if (stats != nullptr) {
      stats->lineage_items_created.fetch_add(
          static_cast<int64_t>(out_items.size()), std::memory_order_relaxed);
    }
  }

  // Reuse probing. Scalar-only operations are not worth caching.
  const ReuseMode mode = ctx->config().reuse_mode;
  const bool reuse = ctx->reuse_active() && IsReusableOp() &&
                     !out_items.empty() && any_matrix_input;
  // Static reuse planner (Sec. 4.4 at compile time): a must-compute verdict
  // proves the cache lookup costs more than recomputing, so the full probe
  // (and its claim) is skipped. The value is still put and the partial
  // path stays open: costlier downstream operations may build on it, and a
  // partial rewrite's saving scales with the reused component, not with
  // this instruction's recompute estimate.
  const bool skip_probe =
      reuse && probe_verdict_ == ProbeVerdict::kMustCompute;
  if (skip_probe && stats != nullptr) {
    stats->probe_disabled_static.fetch_add(1, std::memory_order_relaxed);
  }
  const bool probe_full =
      reuse && !skip_probe && mode != ReuseMode::kPartial;
  const bool probe_partial = reuse && (mode == ReuseMode::kPartial ||
                                       mode == ReuseMode::kHybrid ||
                                       mode == ReuseMode::kMultiLevel);
  std::vector<bool> claimed(outputs_.size(), false);
  ReuseCache* cache = ctx->cache();

  if ((probe_full || probe_partial) && stats != nullptr) {
    stats->cache_probes.fetch_add(1, std::memory_order_relaxed);
  }

  if (probe_full) {
    std::vector<DataPtr> hits(outputs_.size());
    bool all_hit = true;
    for (size_t i = 0; i < outputs_.size(); ++i) {
      ReuseCache::ProbeResult r = cache->Probe(out_items[i], /*claim=*/true);
      if (r.kind == ReuseCache::ProbeKind::kHit) {
        hits[i] = std::move(r.value);
      } else {
        claimed[i] = r.kind == ReuseCache::ProbeKind::kClaimed;
        all_hit = false;
        break;  // Remaining keys are not probed (and not claimed).
      }
    }
    if (all_hit) {
      for (size_t i = 0; i < outputs_.size(); ++i) {
        ctx->SetVariable(outputs_[i], std::move(hits[i]), out_items[i]);
      }
      if (stats != nullptr) {
        stats->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
  }

  if (probe_partial && outputs_.size() == 1) {
    StopWatch watch;
    DataPtr value =
        cache->TryPartialReuse(out_items[0], inputs, ctx->parallel());
    if (stats != nullptr) {
      stats->rewrite_nanos.fetch_add(watch.ElapsedNanos(),
                                     std::memory_order_relaxed);
    }
    if (value != nullptr) {
      if (claimed[0]) {
        cache->Put(out_items[0], value, watch.ElapsedSeconds());
        claimed[0] = false;
      }
      ctx->SetVariable(outputs_[0], std::move(value), out_items[0]);
      if (stats != nullptr) {
        stats->partial_reuse_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
  }

  if ((probe_full || probe_partial) && stats != nullptr) {
    stats->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  // Execute the kernel.
  StopWatch watch;
  Result<std::vector<DataPtr>> computed = Compute(ctx, inputs, state);
  if (!computed.ok()) {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      if (claimed[i]) cache->Abort(out_items[i]);
    }
    return computed.status();
  }
  double seconds = watch.ElapsedSeconds();
  std::vector<DataPtr> values = std::move(computed).ValueOrDie();
  LIMA_CHECK_EQ(values.size(), outputs_.size())
      << "instruction " << opcode() << " output arity mismatch";

  // Source instructions stamp the produced dimensions onto their lineage
  // items (advisory provenance; recorded before the cache shares the item).
  if (!out_items.empty() && RecordsLineageDims()) {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      if (values[i] != nullptr && values[i]->type() == DataType::kMatrix) {
        const MatrixPtr& m =
            static_cast<const MatrixData*>(values[i].get())->matrix();
        out_items[i]->RecordDims(m->rows(), m->cols());
      }
    }
  }

  // Populate the cache. With full probing, only claimed keys are filled;
  // with partial-only mode, values are inserted directly.
  if (reuse) {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      if (claimed[i]) {
        cache->Put(out_items[i], values[i], seconds);
      } else if (!probe_full) {
        cache->Put(out_items[i], values[i], seconds);
      }
    }
  }

  for (size_t i = 0; i < outputs_.size(); ++i) {
    ctx->SetVariable(outputs_[i], std::move(values[i]),
                     out_items.empty() ? nullptr : out_items[i]);
  }
  return Status::OK();
}

}  // namespace lima
