#ifndef LIMA_RUNTIME_FUSED_OP_H_
#define LIMA_RUNTIME_FUSED_OP_H_

#include <string>
#include <vector>

#include "matrix/elementwise.h"
#include "runtime/instruction.h"

namespace lima {

/// One step of a fused cell-wise operator chain. Sources reference either an
/// instruction operand or the result of an earlier step.
struct FusedStep {
  struct Src {
    enum class Kind { kOperand, kStep };
    Kind kind;
    int index;
    static Src OperandRef(int i) { return {Kind::kOperand, i}; }
    static Src StepRef(int i) { return {Kind::kStep, i}; }
  };

  bool is_binary = true;
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kExp;
  Src lhs{Src::Kind::kOperand, 0};
  Src rhs{Src::Kind::kOperand, 0};  ///< unused for unary steps
};

/// A fused operator produced by operator fusion (Sec. 3.3): a chain of
/// cell-wise binary/unary operations executed in a single pass without
/// materialized intermediates. Matrix operands must share one shape; scalar
/// operands broadcast.
///
/// Fusion loses operator semantics, so the instruction expands its
/// compile-time lineage patch at runtime: BuildLineage materializes one
/// lineage item per fused step, making the trace identical to unfused
/// execution (and therefore interchangeable in the reuse cache).
class FusedInstruction : public ComputationInstruction {
 public:
  FusedInstruction(std::vector<Operand> operands, std::vector<FusedStep> steps,
                   std::string output);

  const std::vector<FusedStep>& steps() const { return steps_; }
  std::string ToString() const override;

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

  std::vector<LineageItemPtr> BuildLineage(
      ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
      const ExecState& state) const override;

 private:
  std::vector<FusedStep> steps_;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_FUSED_OP_H_
