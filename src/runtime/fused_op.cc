#include "runtime/fused_op.h"

#include <algorithm>
#include <vector>

#include "analysis/cost_model.h"
#include "common/parallel.h"

namespace lima {

FusedInstruction::FusedInstruction(std::vector<Operand> operands,
                                   std::vector<FusedStep> steps,
                                   std::string output)
    : ComputationInstruction("fused", std::move(operands),
                             {std::move(output)}),
      steps_(std::move(steps)) {
  LIMA_CHECK(!steps_.empty());
}

std::string FusedInstruction::ToString() const {
  std::string out = "fused(" + std::to_string(steps_.size()) + " ops)";
  for (const Operand& op : operands_) {
    out += " ";
    out += op.DebugString();
  }
  out += " -> " + outputs_[0];
  return out;
}

std::vector<LineageItemPtr> FusedInstruction::BuildLineage(
    ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  // Expand the compile-time lineage patch: one item per fused step, so the
  // trace equals unfused execution (Sec. 3.3).
  std::vector<LineageItemPtr> step_items(steps_.size());
  auto src_item = [&](const FusedStep::Src& src) -> LineageItemPtr {
    return src.kind == FusedStep::Src::Kind::kOperand
               ? input_items[src.index]
               : step_items[src.index];
  };
  for (size_t i = 0; i < steps_.size(); ++i) {
    const FusedStep& step = steps_[i];
    if (step.is_binary) {
      step_items[i] = LineageItem::Create(
          BinaryOpName(step.bop), {src_item(step.lhs), src_item(step.rhs)});
    } else {
      step_items[i] =
          LineageItem::Create(UnaryOpName(step.uop), {src_item(step.lhs)});
    }
  }
  return {step_items.back()};
}

Result<std::vector<DataPtr>> FusedInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  const ParallelContext* par = ctx->parallel();
  // Classify operands: the single-pass kernel requires all matrix operands
  // to share one shape (scalars broadcast). Mixed shapes (row/column-vector
  // broadcasting) and all-scalar chains fall back to stepwise evaluation.
  int64_t rows = -1;
  int64_t cols = -1;
  bool uniform = true;
  std::vector<const Matrix*> matrices(inputs.size(), nullptr);
  std::vector<double> scalars(inputs.size(), 0.0);
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i]->type() == DataType::kMatrix) {
      const Matrix* m =
          static_cast<const MatrixData*>(inputs[i].get())->matrix().get();
      if (rows < 0) {
        rows = m->rows();
        cols = m->cols();
      } else if (m->rows() != rows || m->cols() != cols) {
        uniform = false;
      }
      matrices[i] = m;
    } else {
      LIMA_ASSIGN_OR_RETURN(double v, AsNumber(inputs[i]));
      scalars[i] = v;
    }
  }
  if (rows < 0 || !uniform) {
    // Fallback: evaluate the steps as full matrix/scalar operations with
    // R-style broadcasting — semantically identical, just materialized.
    std::vector<DataPtr> step_values(steps_.size());
    auto src_data = [&](const FusedStep::Src& src) -> const DataPtr& {
      return src.kind == FusedStep::Src::Kind::kOperand
                 ? inputs[src.index]
                 : step_values[src.index];
    };
    for (size_t s = 0; s < steps_.size(); ++s) {
      const FusedStep& step = steps_[s];
      const DataPtr& a = src_data(step.lhs);
      if (step.is_binary) {
        const DataPtr& b = src_data(step.rhs);
        bool am = a->type() == DataType::kMatrix;
        bool bm = b->type() == DataType::kMatrix;
        if (am && bm) {
          LIMA_ASSIGN_OR_RETURN(MatrixPtr ma, AsMatrix(a));
          LIMA_ASSIGN_OR_RETURN(MatrixPtr mb, AsMatrix(b));
          LIMA_ASSIGN_OR_RETURN(Matrix r,
                                EwiseBinary(step.bop, *ma, *mb, par));
          step_values[s] = MakeMatrixData(std::move(r));
        } else if (am || bm) {
          LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(am ? a : b));
          LIMA_ASSIGN_OR_RETURN(double v, AsNumber(am ? b : a));
          step_values[s] = MakeMatrixData(
              EwiseBinaryScalar(step.bop, *m, v, /*scalar_is_left=*/!am, par));
        } else {
          LIMA_ASSIGN_OR_RETURN(double va, AsNumber(a));
          LIMA_ASSIGN_OR_RETURN(double vb, AsNumber(b));
          step_values[s] = MakeDoubleData(ApplyBinary(step.bop, va, vb));
        }
      } else {
        if (a->type() == DataType::kMatrix) {
          LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(a));
          step_values[s] = MakeMatrixData(EwiseUnary(step.uop, *m, par));
        } else {
          LIMA_ASSIGN_OR_RETURN(double v, AsNumber(a));
          step_values[s] = MakeDoubleData(ApplyUnary(step.uop, v));
        }
      }
    }
    return std::vector<DataPtr>{step_values.back()};
  }

  Matrix out(rows, cols);
  double* po = out.mutable_data();
  const int64_t n = out.size();
  // Each cell is independent (step_vals is per-cell scratch), so chunks of
  // the cell range run in parallel; results are byte-identical because every
  // cell's value depends only on its own inputs.
  const double steps_cost = static_cast<double>(steps_.size());
  int chunks = PlanParallelChunks(static_cast<double>(n) * steps_cost,
                                  static_cast<double>(n) * 16.0);
  int64_t chunk_cells = (n + chunks - 1) / std::max(chunks, 1);
  int64_t slices = chunks > 1 ? (n + chunk_cells - 1) / chunk_cells : 1;
  RunChunks(par, slices, [&](int64_t c) {
    int64_t begin = slices > 1 ? c * chunk_cells : 0;
    int64_t end = slices > 1 ? std::min(n, begin + chunk_cells) : n;
    std::vector<double> step_vals(steps_.size());
    for (int64_t cell = begin; cell < end; ++cell) {
      auto src_val = [&](const FusedStep::Src& src) -> double {
        if (src.kind == FusedStep::Src::Kind::kStep) {
          return step_vals[src.index];
        }
        const Matrix* m = matrices[src.index];
        return m != nullptr ? m->data()[cell] : scalars[src.index];
      };
      for (size_t s = 0; s < steps_.size(); ++s) {
        const FusedStep& step = steps_[s];
        step_vals[s] = step.is_binary
                           ? ApplyBinary(step.bop, src_val(step.lhs),
                                         src_val(step.rhs))
                           : ApplyUnary(step.uop, src_val(step.lhs));
      }
      po[cell] = step_vals.back();
    }
  });
  return std::vector<DataPtr>{MakeMatrixData(std::move(out))};
}

}  // namespace lima
