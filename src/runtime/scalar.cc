#include "runtime/scalar.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace lima {

ScalarValue ScalarValue::Double(double v) {
  ScalarValue s;
  s.kind_ = ScalarKind::kDouble;
  s.num_ = v;
  return s;
}

ScalarValue ScalarValue::Int(int64_t v) {
  ScalarValue s;
  s.kind_ = ScalarKind::kInt;
  s.num_ = static_cast<double>(v);
  return s;
}

ScalarValue ScalarValue::Bool(bool v) {
  ScalarValue s;
  s.kind_ = ScalarKind::kBool;
  s.num_ = v ? 1.0 : 0.0;
  return s;
}

ScalarValue ScalarValue::String(std::string v) {
  ScalarValue s;
  s.kind_ = ScalarKind::kString;
  s.str_ = std::move(v);
  return s;
}

double ScalarValue::AsDouble() const {
  LIMA_CHECK(is_numeric()) << "string scalar used as number: " << str_;
  return num_;
}

int64_t ScalarValue::AsInt() const {
  LIMA_CHECK(is_numeric()) << "string scalar used as number: " << str_;
  return static_cast<int64_t>(std::llround(num_));
}

bool ScalarValue::AsBool() const {
  LIMA_CHECK(is_numeric()) << "string scalar used as boolean: " << str_;
  return num_ != 0.0;
}

const std::string& ScalarValue::AsString() const {
  LIMA_CHECK(is_string()) << "non-string scalar used as string";
  return str_;
}

std::string ScalarValue::ToDisplayString() const {
  switch (kind_) {
    case ScalarKind::kDouble:
      return FormatDouble(num_);
    case ScalarKind::kInt:
      return std::to_string(static_cast<int64_t>(num_));
    case ScalarKind::kBool:
      return num_ != 0.0 ? "TRUE" : "FALSE";
    case ScalarKind::kString:
      return str_;
  }
  return "";
}

std::string ScalarValue::EncodeLineageLiteral() const {
  switch (kind_) {
    case ScalarKind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "D%.17g", num_);
      return buf;
    }
    case ScalarKind::kInt:
      return "I" + std::to_string(static_cast<int64_t>(num_));
    case ScalarKind::kBool:
      return num_ != 0.0 ? "Btrue" : "Bfalse";
    case ScalarKind::kString:
      return "S" + str_;
  }
  return "";
}

Result<ScalarValue> ScalarValue::DecodeLineageLiteral(
    const std::string& encoded) {
  if (encoded.empty()) {
    return Status::ParseError("empty lineage literal");
  }
  std::string payload = encoded.substr(1);
  switch (encoded[0]) {
    case 'D':
      return ScalarValue::Double(std::stod(payload));
    case 'I':
      return ScalarValue::Int(std::stoll(payload));
    case 'B':
      return ScalarValue::Bool(payload == "true");
    case 'S':
      return ScalarValue::String(payload);
    default:
      return Status::ParseError("bad lineage literal: " + encoded);
  }
}

bool ScalarValue::operator==(const ScalarValue& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == ScalarKind::kString) return str_ == other.str_;
  return num_ == other.num_;
}

}  // namespace lima
