#ifndef LIMA_RUNTIME_REUSE_CACHE_H_
#define LIMA_RUNTIME_REUSE_CACHE_H_

#include <vector>

#include "common/parallel.h"
#include "lineage/lineage_item.h"
#include "runtime/data.h"

namespace lima {

/// Abstract interface of the lineage-based reuse cache as seen by runtime
/// instructions. The concrete implementation (with eviction, spilling and
/// partial rewrites) lives in src/reuse; the indirection keeps the library
/// layering acyclic (runtime -> this interface <- reuse).
class ReuseCache {
 public:
  enum class ProbeKind {
    kHit,      ///< value returned, instruction can be skipped
    kMiss,     ///< no entry, no claim registered
    kClaimed,  ///< no entry; a placeholder was registered for this caller,
               ///< which MUST call Put() or Abort() for the key
  };

  struct ProbeResult {
    ProbeKind kind;
    DataPtr value;  ///< set iff kind == kHit
  };

  virtual ~ReuseCache() = default;

  /// Probes for full reuse of `key`. If `claim` and the key is absent, a
  /// placeholder entry is registered (Sec. 4.1 task-parallel loops): other
  /// threads probing the same key block until the claimant calls Put/Abort.
  ///
  /// Deadlock-freedom: an operation-level claimant never blocks while
  /// holding its claim (kernels are pure), so operation claims always make
  /// progress. Function/block-level claimants may block on operation
  /// placeholders (which resolve promptly) or on other function claims; a
  /// cycle there would require mutually recursive calls with identical
  /// arguments, which is non-terminating under sequential execution as well
  /// and is cut off by the call-depth guard.
  virtual ProbeResult Probe(const LineageItemPtr& key, bool claim) = 0;

  /// Inserts the computed value (fills a placeholder if one was claimed).
  virtual void Put(const LineageItemPtr& key, DataPtr value,
                   double compute_seconds) = 0;

  /// Releases a claimed placeholder without a value (compute failed).
  virtual void Abort(const LineageItemPtr& key) = 0;

  /// Non-blocking lookup that never claims and never counts as a probe;
  /// used by partial-rewrite pattern matching.
  virtual DataPtr Peek(const LineageItemPtr& key) = 0;

  /// Attempts partial reuse (Sec. 4.2) for the operation identified by
  /// `key`, whose resolved input values are `inputs` (positionally aligned
  /// with key->inputs()). Returns the compensated result or nullptr.
  virtual DataPtr TryPartialReuse(const LineageItemPtr& key,
                                  const std::vector<DataPtr>& inputs,
                                  const ParallelContext* par) = 0;

  /// Drops all entries (and spill files).
  virtual void Clear() = 0;

  /// Current number of (non-placeholder) entries.
  virtual int64_t NumEntries() const = 0;

  /// Current total size of cached values in bytes.
  virtual int64_t SizeInBytes() const = 0;

  /// Per-thread tenant attribution tag (multi-tenant serving,
  /// docs/SERVING.md). The tag is opaque at this layer; the concrete cache
  /// interns a tenant name to a tag (LineageCache::TenantScope) and charges
  /// probes/hits/bytes on the tagged thread to that tenant. It lives here so
  /// the runtime can propagate it into parfor worker threads without
  /// depending on the reuse layer. Null = unattributed (the default).
  static void* ThreadTenantTag() { return tenant_tag(); }
  static void SetThreadTenantTag(void* tag) { tenant_tag() = tag; }

  /// RAII propagation of a tag captured on another thread (parfor workers,
  /// thread-pool tasks); restores the previous tag on destruction.
  class ScopedTenantTag {
   public:
    explicit ScopedTenantTag(void* tag) : prev_(tenant_tag()) {
      tenant_tag() = tag;
    }
    ~ScopedTenantTag() { tenant_tag() = prev_; }
    ScopedTenantTag(const ScopedTenantTag&) = delete;
    ScopedTenantTag& operator=(const ScopedTenantTag&) = delete;

   private:
    void* prev_;
  };

 private:
  static void*& tenant_tag() {
    static thread_local void* tag = nullptr;
    return tag;
  }
};

}  // namespace lima

#endif  // LIMA_RUNTIME_REUSE_CACHE_H_
