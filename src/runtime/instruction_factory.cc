#include "runtime/instruction_factory.h"

#include <unordered_map>

#include "common/check.h"
#include "runtime/instructions_compute.h"
#include "runtime/instructions_datagen.h"
#include "runtime/instructions_matrix.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

using Built = Result<std::unique_ptr<Instruction>>;
using Builder = Built (*)(OpcodeId id, std::vector<Operand> in,
                          std::vector<std::string> out);

std::unique_ptr<Instruction> Up(Instruction* instruction) {
  return std::unique_ptr<Instruction>(instruction);
}

// Elementwise enums resolved from the interned opcode; the name functions in
// matrix/elementwise.* stay the single spelling of each operator.
const std::unordered_map<int32_t, BinaryOp>& BinaryOpsById() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<int32_t, BinaryOp>;
    for (int i = 0; i <= static_cast<int>(BinaryOp::kIntDiv); ++i) {
      BinaryOp op = static_cast<BinaryOp>(i);
      m->emplace(InternOpcode(BinaryOpName(op)).value(), op);
    }
    return m;
  }();
  return *map;
}

const std::unordered_map<int32_t, UnaryOp>& UnaryOpsById() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<int32_t, UnaryOp>;
    for (int i = 0; i <= static_cast<int>(UnaryOp::kSigmoid); ++i) {
      UnaryOp op = static_cast<UnaryOp>(i);
      m->emplace(InternOpcode(UnaryOpName(op)).value(), op);
    }
    return m;
  }();
  return *map;
}

Built BuildBinary(OpcodeId id, std::vector<Operand> in,
                  std::vector<std::string> out) {
  return Up(new BinaryInstruction(BinaryOpsById().at(id.value()),
                                  std::move(in[0]), std::move(in[1]),
                                  std::move(out[0])));
}

Built BuildUnary(OpcodeId id, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new UnaryInstruction(UnaryOpsById().at(id.value()),
                                 std::move(in[0]), std::move(out[0])));
}

Built BuildAggregate(OpcodeId id, std::vector<Operand> in,
                     std::vector<std::string> out) {
  return Up(
      new AggregateInstruction(OpcodeName(id), std::move(in[0]),
                               std::move(out[0])));
}

Built BuildIfElse(OpcodeId /*id*/, std::vector<Operand> in,
                  std::vector<std::string> out) {
  return Up(new IfElseInstruction(std::move(in[0]), std::move(in[1]),
                                  std::move(in[2]), std::move(out[0])));
}

Built BuildMatMul(OpcodeId /*id*/, std::vector<Operand> in,
                  std::vector<std::string> out) {
  return Up(
      new MatMulInstruction(std::move(in[0]), std::move(in[1]),
                            std::move(out[0])));
}

Built BuildTsmm(OpcodeId id, std::vector<Operand> in,
                std::vector<std::string> out) {
  static const OpcodeId kTsmm = InternOpcode("tsmm");
  return Up(new TsmmInstruction(std::move(in[0]), std::move(out[0]),
                                /*left=*/id == kTsmm));
}

Built BuildTsmmCbind(OpcodeId /*id*/, std::vector<Operand> in,
                     std::vector<std::string> out) {
  return Up(new TsmmCbindInstruction(std::move(in[0]), std::move(in[1]),
                                     std::move(out[0])));
}

Built BuildSolve(OpcodeId /*id*/, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new SolveInstruction(std::move(in[0]), std::move(in[1]),
                                 std::move(out[0])));
}

Built BuildCholesky(OpcodeId /*id*/, std::vector<Operand> in,
                    std::vector<std::string> out) {
  return Up(new CholeskyInstruction(std::move(in[0]), std::move(out[0])));
}

Built BuildEigen(OpcodeId /*id*/, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new EigenInstruction(std::move(in[0]), std::move(out[0]),
                                 std::move(out[1])));
}

Built BuildReorg(OpcodeId id, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new ReorgInstruction(OpcodeName(id), std::move(in[0]),
                                 std::move(out[0])));
}

Built BuildReshape(OpcodeId /*id*/, std::vector<Operand> in,
                   std::vector<std::string> out) {
  return Up(new ReshapeInstruction(std::move(in[0]), std::move(in[1]),
                                   std::move(in[2]), std::move(out[0])));
}

Built BuildAppend(OpcodeId id, std::vector<Operand> in,
                  std::vector<std::string> out) {
  static const OpcodeId kCbind = InternOpcode("cbind");
  return Up(new AppendInstruction(id == kCbind, std::move(in[0]),
                                  std::move(in[1]), std::move(out[0])));
}

Built BuildRightIndex(OpcodeId /*id*/, std::vector<Operand> in,
                      std::vector<std::string> out) {
  return Up(new RightIndexInstruction(std::move(in[0]), std::move(in[1]),
                                      std::move(in[2]), std::move(in[3]),
                                      std::move(in[4]), std::move(out[0])));
}

Built BuildLeftIndex(OpcodeId /*id*/, std::vector<Operand> in,
                     std::vector<std::string> out) {
  return Up(new LeftIndexInstruction(std::move(in[0]), std::move(in[1]),
                                     std::move(in[2]), std::move(in[3]),
                                     std::move(in[4]), std::move(in[5]),
                                     std::move(out[0])));
}

Built BuildSelect(OpcodeId id, std::vector<Operand> in,
                  std::vector<std::string> out) {
  static const OpcodeId kSelCols = InternOpcode("selcols");
  return Up(new SelectInstruction(id == kSelCols, std::move(in[0]),
                                  std::move(in[1]), std::move(out[0])));
}

Built BuildTable(OpcodeId /*id*/, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new TableInstruction(std::move(in[0]), std::move(in[1]),
                                 std::move(in[2]), std::move(in[3]),
                                 std::move(out[0])));
}

Built BuildOrder(OpcodeId /*id*/, std::vector<Operand> in,
                 std::vector<std::string> out) {
  return Up(new OrderInstruction(std::move(in[0]), std::move(in[1]),
                                 std::move(in[2]), std::move(out[0])));
}

Built BuildMetadata(OpcodeId id, std::vector<Operand> in,
                    std::vector<std::string> out) {
  return Up(new MetadataInstruction(OpcodeName(id), std::move(in[0]),
                                    std::move(out[0])));
}

Built BuildCast(OpcodeId id, std::vector<Operand> in,
                std::vector<std::string> out) {
  return Up(new CastInstruction(OpcodeName(id), std::move(in[0]),
                                std::move(out[0])));
}

Built BuildToString(OpcodeId /*id*/, std::vector<Operand> in,
                    std::vector<std::string> out) {
  return Up(new ToStringInstruction(std::move(in[0]), std::move(out[0])));
}

Built BuildDataGen(OpcodeId id, std::vector<Operand> in,
                   std::vector<std::string> out) {
  return Up(new DataGenInstruction(OpcodeName(id), std::move(in),
                                   std::move(out[0])));
}

Built BuildList(OpcodeId /*id*/, std::vector<Operand> in,
                std::vector<std::string> out) {
  return Up(new ListInstruction(std::move(in), std::move(out[0])));
}

Built BuildListIndex(OpcodeId /*id*/, std::vector<Operand> in,
                     std::vector<std::string> out) {
  return Up(new ListIndexInstruction(std::move(in[0]), std::move(in[1]),
                                     std::move(out[0])));
}

Built BuildCopyVar(OpcodeId /*id*/, std::vector<Operand> in,
                   std::vector<std::string> out) {
  if (in[0].is_literal) {
    return Status::Invalid("cpvar requires a variable operand");
  }
  return Built(std::unique_ptr<Instruction>(
      VariableInstruction::Copy(std::move(in[0].name), std::move(out[0]))));
}

/// The one opcode -> constructor table, dense over catalog ids.
class FactoryTable {
 public:
  FactoryTable() : builders_(NumCatalogOpcodes(), nullptr) {
    // Elementwise binaries/unaries: registered for every enum value, so a
    // new BinaryOp/UnaryOp is replayable the moment it gets a name.
    for (const auto& [id, op] : BinaryOpsById()) Register(id, BuildBinary);
    for (const auto& [id, op] : UnaryOpsById()) Register(id, BuildUnary);
    for (const char* agg :
         {"sum", "mean", "ua_min", "ua_max", "trace", "colSums", "colMeans",
          "colMins", "colMaxs", "colVars", "rowSums", "rowMeans", "rowMins",
          "rowMaxs", "rowIndexMax"}) {
      Register(agg, BuildAggregate);
    }
    Register("ifelse", BuildIfElse);
    Register("mm", BuildMatMul);
    Register("tsmm", BuildTsmm);
    Register("tmm", BuildTsmm);
    Register("tsmm_cbind", BuildTsmmCbind);
    Register("solve", BuildSolve);
    Register("cholesky", BuildCholesky);
    Register("eigen", BuildEigen);
    for (const char* reorg : {"t", "rev", "diag"}) Register(reorg, BuildReorg);
    Register("reshape", BuildReshape);
    Register("cbind", BuildAppend);
    Register("rbind", BuildAppend);
    Register("rightindex", BuildRightIndex);
    Register("leftindex", BuildLeftIndex);
    Register("selcols", BuildSelect);
    Register("selrows", BuildSelect);
    Register("table", BuildTable);
    Register("order", BuildOrder);
    for (const char* meta : {"nrow", "ncol", "length"}) {
      Register(meta, BuildMetadata);
    }
    Register("castdts", BuildCast);
    Register("castsdm", BuildCast);
    Register("toString", BuildToString);
    for (const char* gen : {"rand", "sample", "seq", "fill"}) {
      Register(gen, BuildDataGen);
    }
    Register("list", BuildList);
    Register("listidx", BuildListIndex);
    Register("cpvar", BuildCopyVar);
  }

  Builder Find(OpcodeId id) const {
    if (!id.valid() || id.value() >= static_cast<int32_t>(builders_.size())) {
      return nullptr;
    }
    return builders_[id.value()];
  }

 private:
  void Register(std::string_view name, Builder builder) {
    Register(InternOpcode(name).value(), builder);
  }
  void Register(int32_t id, Builder builder) {
    LIMA_CHECK(id >= 0 && id < static_cast<int32_t>(builders_.size()))
        << "factory builder for uncatalogued opcode id " << id;
    builders_[id] = builder;
  }

  std::vector<Builder> builders_;
};

const FactoryTable& Factory() {
  static const auto* table = new FactoryTable();
  return *table;
}

Status ArityError(const OpcodeEffect& effect, size_t inputs, size_t outputs) {
  return Status::Invalid(
      std::string("factory: opcode '") + effect.opcode + "' takes " +
      std::to_string(effect.min_inputs) +
      (effect.max_inputs == -1
           ? "+"
           : effect.max_inputs == effect.min_inputs
                 ? ""
                 : ".." + std::to_string(effect.max_inputs)) +
      " operands and produces " + std::to_string(effect.num_outputs) +
      " outputs; got " + std::to_string(inputs) + " operands, " +
      std::to_string(outputs) + " outputs");
}

}  // namespace

Result<std::unique_ptr<Instruction>> MakeInstruction(
    OpcodeId opcode, std::vector<Operand> operands,
    std::vector<std::string> outputs) {
  const OpcodeEffect* effect = LookupOpcode(opcode);
  if (effect == nullptr) {
    return Status::NotImplemented(
        "factory: opcode not in the operator catalog: '" +
        (opcode.valid() ? OpcodeName(opcode) : std::string("<invalid>")) +
        "'");
  }
  Builder builder = Factory().Find(opcode);
  if (builder == nullptr) {
    return Status::NotImplemented(
        std::string("factory: opcode '") + effect->opcode +
        "' has no instruction builder" +
        (effect->lineage_transparent
             ? " (lineage-transparent: replay uses the traced expansion)"
             : ""));
  }
  const int num_in = static_cast<int>(operands.size());
  if (num_in < effect->min_inputs ||
      (effect->max_inputs != -1 && num_in > effect->max_inputs) ||
      (effect->num_outputs != -1 &&
       static_cast<int>(outputs.size()) != effect->num_outputs)) {
    return ArityError(*effect, operands.size(), outputs.size());
  }
  return builder(opcode, std::move(operands), std::move(outputs));
}

Result<std::unique_ptr<Instruction>> MakeInstruction(
    std::string_view opcode, std::vector<Operand> operands,
    std::vector<std::string> outputs) {
  return MakeInstruction(InternOpcode(opcode), std::move(operands),
                         std::move(outputs));
}

bool IsFactoryConstructible(OpcodeId opcode) {
  return Factory().Find(opcode) != nullptr;
}

std::vector<std::string> VerifyFactoryCoverage() {
  std::vector<std::string> missing;
  const std::vector<OpcodeEffect>& effects = AllOpcodeEffects();
  for (int32_t i = 0; i < static_cast<int32_t>(effects.size()); ++i) {
    const OpcodeEffect& effect = effects[i];
    if (!effect.reusable || effect.lineage_transparent) continue;
    if (!IsFactoryConstructible(OpcodeId(i))) {
      missing.push_back(std::string("reusable opcode '") + effect.opcode +
                        "' is not constructible by the instruction factory; "
                        "spill-restore or dedup replay of its lineage nodes "
                        "would fail");
    }
  }
  return missing;
}

}  // namespace lima
