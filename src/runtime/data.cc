#include "runtime/data.h"

namespace lima {

DataPtr MakeMatrixData(Matrix&& m) {
  return std::make_shared<const MatrixData>(MakeMatrixPtr(std::move(m)));
}

DataPtr MakeMatrixData(MatrixPtr m) {
  return std::make_shared<const MatrixData>(std::move(m));
}

DataPtr MakeScalarData(ScalarValue v) {
  return std::make_shared<const ScalarData>(std::move(v));
}

DataPtr MakeDoubleData(double v) {
  return MakeScalarData(ScalarValue::Double(v));
}

DataPtr MakeIntData(int64_t v) { return MakeScalarData(ScalarValue::Int(v)); }

DataPtr MakeBoolData(bool v) { return MakeScalarData(ScalarValue::Bool(v)); }

DataPtr MakeStringData(std::string v) {
  return MakeScalarData(ScalarValue::String(std::move(v)));
}

Result<MatrixPtr> AsMatrix(const DataPtr& data) {
  if (data == nullptr || data->type() != DataType::kMatrix) {
    return Status::TypeError(
        std::string("expected a matrix, got ") +
        (data == nullptr ? "null" : DataTypeToString(data->type())));
  }
  return static_cast<const MatrixData*>(data.get())->matrix();
}

Result<ScalarValue> AsScalar(const DataPtr& data) {
  if (data == nullptr || data->type() != DataType::kScalar) {
    return Status::TypeError(
        std::string("expected a scalar, got ") +
        (data == nullptr ? "null" : DataTypeToString(data->type())));
  }
  return static_cast<const ScalarData*>(data.get())->value();
}

Result<std::shared_ptr<const ListData>> AsList(const DataPtr& data) {
  if (data == nullptr || data->type() != DataType::kList) {
    return Status::TypeError(
        std::string("expected a list, got ") +
        (data == nullptr ? "null" : DataTypeToString(data->type())));
  }
  return std::static_pointer_cast<const ListData>(data);
}

Result<double> AsNumber(const DataPtr& data) {
  if (data != nullptr && data->type() == DataType::kScalar) {
    const ScalarValue& v = static_cast<const ScalarData*>(data.get())->value();
    if (!v.is_numeric()) {
      return Status::TypeError("string scalar used as number");
    }
    return v.AsDouble();
  }
  if (data != nullptr && data->type() == DataType::kMatrix) {
    const MatrixPtr& m = static_cast<const MatrixData*>(data.get())->matrix();
    if (m->rows() == 1 && m->cols() == 1) return m->At(0, 0);
    return Status::TypeError("non-1x1 matrix used as number");
  }
  return Status::TypeError("value is not numeric");
}

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kMatrix:
      return "matrix";
    case DataType::kScalar:
      return "scalar";
    case DataType::kList:
      return "list";
  }
  return "unknown";
}

}  // namespace lima
