#ifndef LIMA_RUNTIME_EXECUTION_CONTEXT_H_
#define LIMA_RUNTIME_EXECUTION_CONTEXT_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/parallel.h"
#include "lineage/dedup.h"
#include "lineage/lineage_map.h"
#include "obs/profiler.h"
#include "runtime/reuse_cache.h"
#include "runtime/stats.h"
#include "runtime/symbol_table.h"

namespace lima {

class Program;

/// Per-execution state threaded through instruction and block execution: the
/// symbol table of live variables, the lineage map, and shared services
/// (config, reuse cache, dedup registry, statistics).
///
/// Function calls and parfor workers run in derived contexts
/// (MakeFunctionContext / MakeWorkerContext) so lineage stays thread- and
/// function-local (Sec. 3.1) while the cache and registry remain shared.
class ExecutionContext {
 public:
  ExecutionContext(const LimaConfig* config, const Program* program,
                   ReuseCache* cache, DedupRegistry* dedup_registry,
                   RuntimeStats* stats);

  ExecutionContext(const ExecutionContext&) = default;
  ExecutionContext& operator=(const ExecutionContext&) = default;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  LineageMap& lineage() { return lineage_; }
  const LineageMap& lineage() const { return lineage_; }

  const LimaConfig& config() const { return *config_; }
  const Program* program() const { return program_; }
  /// Rebinds the program (session reuse across compiled scripts).
  void set_program(const Program* program) { program_ = program; }
  ReuseCache* cache() const { return cache_; }
  DedupRegistry* dedup_registry() const { return dedup_registry_; }
  RuntimeStats* stats() const { return stats_; }

  /// Destination of print() output (defaults to std::cout; tests redirect).
  std::ostream& print_stream() const;
  void set_print_stream(std::ostream* out) { print_stream_ = out; }

  /// Budget handle for intra-operation parallelism, passed to matrix
  /// kernels. Every context — including parfor worker contexts — shares the
  /// process-wide ParallelBudget: a kernel asks for its fair share at call
  /// time, so a 2-worker parfor on a 16-thread budget gives each worker ~8
  /// intra-op threads, re-arbitrated as workers finish (the old per-context
  /// `kernel_threads` pin is gone).
  const ParallelContext* parallel() const { return &parallel_; }

  /// Active dedup tracer while executing a deduplicated loop iteration.
  DedupTracer* dedup_tracer() const { return dedup_tracer_; }
  void set_dedup_tracer(DedupTracer* tracer) { dedup_tracer_ = tracer; }

  /// Per-opcode profile collector; nullptr when profiling is off (the only
  /// hot-path cost of the observability subsystem is this null check).
  /// Collectors are single-threaded: parfor swaps in worker-local
  /// collectors and merges them back at the join (see ParForBlock).
  ProfileCollector* profiler() const { return profiler_; }
  void set_profiler(ProfileCollector* profiler) { profiler_ = profiler; }

  int call_depth() const { return call_depth_; }

  /// Lineage tracing master switch.
  bool tracing_enabled() const { return config_->trace_lineage; }

  /// True when instructions should build lineage items (tracing on and not
  /// in dedup lite mode).
  bool lineage_active() const {
    return tracing_enabled() &&
           !(dedup_tracer_ != nullptr && dedup_tracer_->lite_mode());
  }

  /// True when instructions should probe/populate the reuse cache. Reuse is
  /// disabled inside deduplicated loop iterations (their lineage uses
  /// placeholders, see dedup.h).
  bool reuse_active() const {
    return cache_ != nullptr && config_->reuse_enabled() &&
           tracing_enabled() && dedup_tracer_ == nullptr;
  }

  /// Binds a variable: value plus (when tracing) its lineage item. A null
  /// `item` with tracing enabled creates a unique orphan leaf so distinct
  /// untraced values can never alias in the cache.
  void SetVariable(const std::string& name, DataPtr value,
                   LineageItemPtr item);

  /// Binds an external input with a "read" lineage leaf named `name`
  /// (immutable-input assumption of Sec. 3.4: the name identifies the data).
  void BindInput(const std::string& name, DataPtr value);

  /// Turns on live-bytes accounting for this context's symbol table
  /// (RuntimeStats::live_bytes/peak_live_bytes). Installed on the session's
  /// main context only; function/worker contexts stay uncounted so shared
  /// handles are never double-counted.
  void EnableMemoryAccounting() { symbols_.set_stats(stats_); }

  /// In-place execution support: attempts to take exclusive ownership of
  /// the matrix buffer bound to `name` (which must be the resolved input at
  /// `operand_index`). Succeeds only when the *entire* reference population
  /// is accounted for — the symbol-table binding plus the occurrences in
  /// `inputs` — proving no cache entry, no other binding, no other session,
  /// and no parfor worker can observe the mutation. On success the binding
  /// is dropped (compile-time liveness proved it dead after this op) and
  /// the now-unique buffer is returned mutable; on failure returns nullptr
  /// and execution falls back to allocating.
  std::shared_ptr<Matrix> TryStealBuffer(const std::string& name,
                                         const std::vector<DataPtr>& inputs,
                                         size_t operand_index);

  /// Fresh symbols/lineage for a function body; shared services; depth + 1.
  ExecutionContext MakeFunctionContext() const;

  /// Copies symbols + lineage for a parfor worker. The worker keeps full
  /// access to the parallelism budget (its kernels draw a fair share that
  /// accounts for the other live workers).
  ExecutionContext MakeWorkerContext() const;

 private:
  const LimaConfig* config_;
  const Program* program_;
  ReuseCache* cache_;
  DedupRegistry* dedup_registry_;
  RuntimeStats* stats_;
  SymbolTable symbols_;
  LineageMap lineage_;
  std::ostream* print_stream_ = nullptr;
  DedupTracer* dedup_tracer_ = nullptr;
  ProfileCollector* profiler_ = nullptr;
  ParallelContext parallel_;
  int call_depth_ = 0;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_EXECUTION_CONTEXT_H_
