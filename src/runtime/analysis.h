#ifndef LIMA_RUNTIME_ANALYSIS_H_
#define LIMA_RUNTIME_ANALYSIS_H_

#include <string>
#include <vector>

#include "runtime/program.h"

namespace lima {

/// Inputs/outputs of a block sequence from live-variable analysis:
/// `inputs` are variables read before (definitely) written, `outputs` are
/// all variables possibly written. Both in first-occurrence order.
struct BodyVars {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// Conservative live-variable analysis over a block sequence (Sec. 3.2 /
/// 4.1: loop/function inputs and outputs for dedup and multi-level reuse).
BodyVars AnalyzeBodyVars(const std::vector<BlockPtr>& blocks);

/// Whole-program analysis pass, run once after compilation:
///  - fills every for/while loop's LoopDedupInfo (eligibility: last-level
///    loops without function calls and with at most 20 branches; branch IDs
///    assigned in depth-first order; body inputs/outputs),
///  - computes function determinism (no nondeterministic operations or
///    eval, and only deterministic callees) for multi-level reuse.
void AnalyzeProgram(Program* program);

}  // namespace lima

#endif  // LIMA_RUNTIME_ANALYSIS_H_
