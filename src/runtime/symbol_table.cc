#include "runtime/symbol_table.h"

namespace lima {

void SymbolTable::Set(const std::string& name, DataPtr value) {
  vars_[name] = std::move(value);
}

Result<DataPtr> SymbolTable::Get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return Status::RuntimeError("undefined variable: " + name);
  }
  return it->second;
}

DataPtr SymbolTable::GetOrNull(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : it->second;
}

bool SymbolTable::Contains(const std::string& name) const {
  return vars_.count(name) > 0;
}

void SymbolTable::Remove(const std::string& name) { vars_.erase(name); }

void SymbolTable::Move(const std::string& from, const std::string& to) {
  auto it = vars_.find(from);
  if (it == vars_.end()) return;
  vars_[to] = std::move(it->second);
  vars_.erase(from);
}

void SymbolTable::Copy(const std::string& from, const std::string& to) {
  auto it = vars_.find(from);
  if (it != vars_.end()) vars_[to] = it->second;
}

}  // namespace lima
