#include "runtime/symbol_table.h"

namespace lima {

int64_t SymbolTable::BytesOf(const DataPtr& value) const {
  // Matrices only: scalar payloads are negligible, and list elements are
  // shared handles whose backing matrices are already counted elsewhere.
  if (value == nullptr || value->type() != DataType::kMatrix) return 0;
  return value->SizeInBytes();
}

void SymbolTable::Set(const std::string& name, DataPtr value) {
  if (stats_ != nullptr) {
    auto it = vars_.find(name);
    int64_t old_bytes = it == vars_.end() ? 0 : BytesOf(it->second);
    stats_->AddLiveBytes(BytesOf(value) - old_bytes);
  }
  vars_[name] = std::move(value);
}

Result<DataPtr> SymbolTable::Get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return Status::RuntimeError("undefined variable: " + name);
  }
  return it->second;
}

DataPtr SymbolTable::GetOrNull(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : it->second;
}

bool SymbolTable::Contains(const std::string& name) const {
  return vars_.count(name) > 0;
}

void SymbolTable::Remove(const std::string& name) {
  if (stats_ != nullptr) {
    auto it = vars_.find(name);
    if (it != vars_.end()) stats_->AddLiveBytes(-BytesOf(it->second));
  }
  vars_.erase(name);
}

void SymbolTable::Move(const std::string& from, const std::string& to) {
  auto it = vars_.find(from);
  if (it == vars_.end()) return;
  if (stats_ != nullptr) {
    auto dest = vars_.find(to);
    if (dest != vars_.end()) stats_->AddLiveBytes(-BytesOf(dest->second));
  }
  vars_[to] = std::move(it->second);
  vars_.erase(from);
}

void SymbolTable::Copy(const std::string& from, const std::string& to) {
  auto it = vars_.find(from);
  if (it == vars_.end()) return;
  if (stats_ != nullptr) {
    auto dest = vars_.find(to);
    int64_t old_bytes = dest == vars_.end() ? 0 : BytesOf(dest->second);
    stats_->AddLiveBytes(BytesOf(it->second) - old_bytes);
  }
  vars_[to] = it->second;
}

}  // namespace lima
