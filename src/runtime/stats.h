#ifndef LIMA_RUNTIME_STATS_H_
#define LIMA_RUNTIME_STATS_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lima {

/// Process-wide runtime counters (Sec. 5.1 "LIMA collects various runtime
/// statistics"). Atomic so parfor workers can update concurrently.
struct RuntimeStats {
  std::atomic<int64_t> instructions_executed{0};
  std::atomic<int64_t> lineage_items_created{0};
  std::atomic<int64_t> cache_probes{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};
  std::atomic<int64_t> partial_reuse_hits{0};
  std::atomic<int64_t> probe_disabled_static{0};
  std::atomic<int64_t> function_reuse_hits{0};
  std::atomic<int64_t> block_reuse_hits{0};
  std::atomic<int64_t> placeholder_waits{0};
  std::atomic<int64_t> placeholder_steals{0};
  std::atomic<int64_t> evictions{0};
  std::atomic<int64_t> spills{0};
  std::atomic<int64_t> restores{0};
  std::atomic<int64_t> dedup_patches_created{0};
  std::atomic<int64_t> dedup_items_created{0};
  std::atomic<int64_t> parfor_serialized{0};
  std::atomic<int64_t> inplace_ops{0};
  /// Parallelism-budget arbitration (common/parallel.h): kernel/parfor
  /// lease requests that got at least one extra thread, requests denied
  /// outright (budget exhausted or fair share = 1), and serve admissions
  /// that had to wait for a free run slot. grants + denials ≈ the number of
  /// parallel-eligible kernel calls; a high denial or wait count means the
  /// workload oversubscribes max_parallelism.
  std::atomic<int64_t> budget_grants{0};
  std::atomic<int64_t> budget_denials{0};
  std::atomic<int64_t> budget_lease_waits{0};
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> peak_live_bytes{0};
  std::atomic<int64_t> rewrite_nanos{0};
  std::atomic<int64_t> spill_nanos{0};
  std::atomic<int64_t> compute_saved_nanos{0};

  /// Adjusts the live symbol-table byte count (delta may be negative) and
  /// maintains the high-water mark. Used to cross-check the static memory
  /// estimator against actual allocations.
  void AddLiveBytes(int64_t delta) {
    int64_t now = live_bytes.fetch_add(delta) + delta;
    int64_t peak = peak_live_bytes.load();
    while (now > peak &&
           !peak_live_bytes.compare_exchange_weak(peak, now)) {
    }
  }

  void Reset() {
    instructions_executed = 0;
    lineage_items_created = 0;
    cache_probes = 0;
    cache_hits = 0;
    cache_misses = 0;
    partial_reuse_hits = 0;
    probe_disabled_static = 0;
    function_reuse_hits = 0;
    block_reuse_hits = 0;
    placeholder_waits = 0;
    placeholder_steals = 0;
    evictions = 0;
    spills = 0;
    restores = 0;
    dedup_patches_created = 0;
    dedup_items_created = 0;
    parfor_serialized = 0;
    inplace_ops = 0;
    budget_grants = 0;
    budget_denials = 0;
    budget_lease_waits = 0;
    live_bytes = 0;
    peak_live_bytes = 0;
    rewrite_nanos = 0;
    spill_nanos = 0;
    compute_saved_nanos = 0;
  }

  /// Snapshot of every counter with its full name, in declaration order
  /// (the profile report embeds this verbatim).
  std::vector<std::pair<std::string, int64_t>> ToPairs() const {
    return {
        {"instructions_executed", instructions_executed.load()},
        {"lineage_items_created", lineage_items_created.load()},
        {"cache_probes", cache_probes.load()},
        {"cache_hits", cache_hits.load()},
        {"cache_misses", cache_misses.load()},
        {"partial_reuse_hits", partial_reuse_hits.load()},
        {"probe_disabled_static", probe_disabled_static.load()},
        {"function_reuse_hits", function_reuse_hits.load()},
        {"block_reuse_hits", block_reuse_hits.load()},
        {"placeholder_waits", placeholder_waits.load()},
        {"placeholder_steals", placeholder_steals.load()},
        {"evictions", evictions.load()},
        {"spills", spills.load()},
        {"restores", restores.load()},
        {"dedup_patches_created", dedup_patches_created.load()},
        {"dedup_items_created", dedup_items_created.load()},
        {"parfor_serialized", parfor_serialized.load()},
        {"inplace_ops", inplace_ops.load()},
        {"budget_grants", budget_grants.load()},
        {"budget_denials", budget_denials.load()},
        {"budget_lease_waits", budget_lease_waits.load()},
        {"peak_live_bytes", peak_live_bytes.load()},
        {"rewrite_nanos", rewrite_nanos.load()},
        {"spill_nanos", spill_nanos.load()},
        {"compute_saved_nanos", compute_saved_nanos.load()},
    };
  }

  std::string ToString() const {
    std::ostringstream out;
    out << "instructions=" << instructions_executed.load()
        << " lineage_items=" << lineage_items_created.load()
        << " probes=" << cache_probes.load() << " hits=" << cache_hits.load()
        << " misses=" << cache_misses.load()
        << " partial=" << partial_reuse_hits.load()
        << " probe_disabled_static=" << probe_disabled_static.load()
        << " fn_hits=" << function_reuse_hits.load()
        << " blk_hits=" << block_reuse_hits.load()
        << " waits=" << placeholder_waits.load()
        << " steals=" << placeholder_steals.load()
        << " evictions=" << evictions.load() << " spills=" << spills.load()
        << " restores=" << restores.load()
        << " dedup_patches=" << dedup_patches_created.load()
        << " dedup_items=" << dedup_items_created.load()
        << " parfor_serialized=" << parfor_serialized.load()
        << " inplace_ops=" << inplace_ops.load()
        << " budget_grants=" << budget_grants.load()
        << " budget_denials=" << budget_denials.load()
        << " budget_lease_waits=" << budget_lease_waits.load()
        << " peak_live_bytes=" << peak_live_bytes.load()
        << " rewrite_nanos=" << rewrite_nanos.load()
        << " spill_nanos=" << spill_nanos.load()
        << " compute_saved_nanos=" << compute_saved_nanos.load();
    return out.str();
  }
};

}  // namespace lima

#endif  // LIMA_RUNTIME_STATS_H_
