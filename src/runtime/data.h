#ifndef LIMA_RUNTIME_DATA_H_
#define LIMA_RUNTIME_DATA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/lineage_item.h"
#include "matrix/matrix.h"
#include "runtime/scalar.h"

namespace lima {

/// Runtime data object kinds held by the symbol table and the lineage cache.
enum class DataType { kMatrix, kScalar, kList };

/// Immutable runtime data object. Instructions consume and produce DataPtr
/// handles; values are never mutated in place.
class Data {
 public:
  virtual ~Data() = default;
  virtual DataType type() const = 0;
  /// Approximate in-memory size (drives cache budgets and eviction).
  virtual int64_t SizeInBytes() const = 0;
};

using DataPtr = std::shared_ptr<const Data>;

/// A matrix value.
class MatrixData : public Data {
 public:
  explicit MatrixData(MatrixPtr matrix) : matrix_(std::move(matrix)) {}
  DataType type() const override { return DataType::kMatrix; }
  int64_t SizeInBytes() const override { return matrix_->SizeInBytes(); }
  const MatrixPtr& matrix() const { return matrix_; }

 private:
  MatrixPtr matrix_;
};

/// A scalar value.
class ScalarData : public Data {
 public:
  explicit ScalarData(ScalarValue value) : value_(std::move(value)) {}
  DataType type() const override { return DataType::kScalar; }
  int64_t SizeInBytes() const override {
    return static_cast<int64_t>(sizeof(ScalarValue)) +
           (value_.is_string()
                ? static_cast<int64_t>(value_.AsString().size())
                : 0);
  }
  const ScalarValue& value() const { return value_; }

 private:
  ScalarValue value_;
};

/// An ordered list of data objects. Each element carries the lineage it had
/// when the list was built, so list indexing restores fine-grained lineage
/// (also used to bundle function outputs for multi-level reuse, Sec. 4.1).
class ListData : public Data {
 public:
  ListData(std::vector<DataPtr> elements,
           std::vector<LineageItemPtr> element_lineage)
      : elements_(std::move(elements)),
        element_lineage_(std::move(element_lineage)) {}

  DataType type() const override { return DataType::kList; }
  int64_t SizeInBytes() const override {
    int64_t total = 0;
    for (const DataPtr& e : elements_) total += e->SizeInBytes();
    return total;
  }
  const std::vector<DataPtr>& elements() const { return elements_; }
  const std::vector<LineageItemPtr>& element_lineage() const {
    return element_lineage_;
  }
  int64_t size() const { return static_cast<int64_t>(elements_.size()); }

 private:
  std::vector<DataPtr> elements_;
  std::vector<LineageItemPtr> element_lineage_;
};

/// Constructors.
DataPtr MakeMatrixData(Matrix&& m);
DataPtr MakeMatrixData(MatrixPtr m);
DataPtr MakeScalarData(ScalarValue v);
DataPtr MakeDoubleData(double v);
DataPtr MakeIntData(int64_t v);
DataPtr MakeBoolData(bool v);
DataPtr MakeStringData(std::string v);

/// Typed accessors returning TypeError on kind mismatch.
Result<MatrixPtr> AsMatrix(const DataPtr& data);
Result<ScalarValue> AsScalar(const DataPtr& data);
Result<std::shared_ptr<const ListData>> AsList(const DataPtr& data);

/// Numeric view: scalar -> its double; 1x1 matrix -> its cell.
Result<double> AsNumber(const DataPtr& data);

const char* DataTypeToString(DataType type);

}  // namespace lima

#endif  // LIMA_RUNTIME_DATA_H_
