#ifndef LIMA_RUNTIME_STATIC_PLAN_H_
#define LIMA_RUNTIME_STATIC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lima {

/// Compile-time probe-placement verdict of the static reuse planner
/// (analysis/redundancy.h, Sec. 4.4): for each reusable instruction the
/// planner decides whether a lineage-cache probe is worth its overhead.
///
///   kProbeWorthwhile     — probe as usual (default for unanalyzed
///                          instructions, unknown shapes, and anything whose
///                          recompute cost exceeds the probe overhead),
///   kMustCompute         — recomputing is provably cheaper than the cache
///                          lookup: the runtime skips the full probe,
///                          counting RuntimeStats::probe_disabled_static
///                          (the value is still put, and partial rewrites
///                          still apply — their saving scales with the
///                          reused component, not this op's recompute),
///   kRedundantInProgram  — another static instruction provably computes the
///                          same value number: always probe (a hit is
///                          expected).
enum class ProbeVerdict : uint8_t {
  kProbeWorthwhile = 0,
  kMustCompute = 1,
  kRedundantInProgram = 2,
};

const char* ProbeVerdictName(ProbeVerdict verdict);

/// One analyzed value-producing instruction: its compile-time value number
/// (the static lineage hash), planner verdict, and cost estimate. Rows
/// describe the program as analyzed (before operator fusion rewrites it).
struct StaticPlanInstr {
  std::string function;  ///< enclosing scope: "main" or the function name
  std::string location;  ///< block path, e.g. "main/block[2]/then/block[0]"
  int source_line = 0;   ///< 1-based script line; 0 = unknown
  std::string opcode;
  uint64_t value_number = 0;
  ProbeVerdict verdict = ProbeVerdict::kProbeWorthwhile;
  /// Provably recomputes a value an earlier instruction already produced.
  bool redundant = false;
  /// The earlier producer lives in a different basic block (cross-block or
  /// loop-invariant redundancy).
  bool cross_block = false;
  /// FLOP + byte-traffic estimate from the shape lattice; meaningful only
  /// when cost_known.
  bool cost_known = false;
  double est_flops = 0;
  int64_t est_bytes = 0;
};

/// One fusion-site decision of the cost-based fusion planner
/// (lang/fusion_pass.cc): either an applied fused chain with its predicted
/// saving, or a chain link the cost model rejected.
struct StaticFusionSite {
  std::string function;
  std::string location;
  int source_line = 0;
  std::string output;     ///< variable the (would-be) fused chain produces
  int num_steps = 0;      ///< steps in the applied chain; 1 for rejections
  bool applied = false;
  /// "profitable" for applied plans; "cost-rejected:<reason>" with reason in
  /// {scalar, broadcast, cse, unprofitable} for chains kept unfused.
  std::string decision;
  double predicted_saving_nanos = 0;
  int64_t saved_bytes = 0;  ///< materialized intermediate bytes avoided
};

/// The full static plan of one compiled program: value-numbering summary,
/// per-instruction planner rows, and fusion-site decisions. Attached to the
/// Program by the compile pipeline when LimaConfig::redundancy_check is on;
/// reported by `lima_run --plan-report` and the profile report's
/// `static_plan` section.
struct StaticPlan {
  bool analyzed = false;
  int num_instructions = 0;        ///< value-numbered instructions
  int num_value_numbers = 0;       ///< distinct value numbers assigned
  int num_must_compute = 0;
  int num_probe_worthwhile = 0;
  int num_redundant = 0;           ///< redundant-in-program instructions
  int num_cross_block_redundant = 0;
  std::vector<StaticPlanInstr> instrs;
  std::vector<StaticFusionSite> fusion_sites;

  int num_fusion_applied() const {
    int n = 0;
    for (const StaticFusionSite& site : fusion_sites) n += site.applied;
    return n;
  }
  int num_fusion_rejected() const {
    return static_cast<int>(fusion_sites.size()) - num_fusion_applied();
  }
};

inline const char* ProbeVerdictName(ProbeVerdict verdict) {
  switch (verdict) {
    case ProbeVerdict::kProbeWorthwhile:
      return "probe-worthwhile";
    case ProbeVerdict::kMustCompute:
      return "must-compute";
    case ProbeVerdict::kRedundantInProgram:
      return "redundant-in-program";
  }
  return "unknown";
}

}  // namespace lima

#endif  // LIMA_RUNTIME_STATIC_PLAN_H_
