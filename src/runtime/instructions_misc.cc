#include "runtime/instructions_misc.h"

#include <cmath>
#include <ostream>

#include <fstream>

#include "common/string_util.h"
#include "common/timer.h"
#include "lineage/serialize.h"
#include "matrix/matrix_io.h"
#include "runtime/program.h"

namespace lima {

Status AssignLiteralInstruction::Execute(ExecutionContext* ctx) const {
  if (ctx->stats() != nullptr) {
    ctx->stats()->instructions_executed.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  LineageItemPtr item;
  if (ctx->lineage_active()) {
    item = ctx->lineage().GetOrCreateLiteral(value_.EncodeLineageLiteral());
  }
  ctx->SetVariable(output_, MakeScalarData(value_), std::move(item));
  return Status::OK();
}

std::string AssignLiteralInstruction::ToString() const {
  return "assignvar " + value_.ToDisplayString() + " -> " + output_;
}

VariableInstruction::VariableInstruction(Kind kind,
                                         std::vector<std::string> names)
    : Instruction(kind == Kind::kCopy ? "cpvar"
                                      : (kind == Kind::kMove ? "mvvar"
                                                             : "rmvar")),
      kind_(kind),
      names_(std::move(names)) {}

std::unique_ptr<VariableInstruction> VariableInstruction::Copy(
    std::string from, std::string to) {
  return std::unique_ptr<VariableInstruction>(new VariableInstruction(
      Kind::kCopy, {std::move(from), std::move(to)}));
}

std::unique_ptr<VariableInstruction> VariableInstruction::Move(
    std::string from, std::string to) {
  return std::unique_ptr<VariableInstruction>(new VariableInstruction(
      Kind::kMove, {std::move(from), std::move(to)}));
}

std::unique_ptr<VariableInstruction> VariableInstruction::Remove(
    std::vector<std::string> names) {
  return std::unique_ptr<VariableInstruction>(
      new VariableInstruction(Kind::kRemove, std::move(names)));
}

Status VariableInstruction::Execute(ExecutionContext* ctx) const {
  switch (kind_) {
    case Kind::kCopy:
      if (!ctx->symbols().Contains(names_[0])) {
        return Status::RuntimeError("cpvar: undefined variable " + names_[0]);
      }
      ctx->symbols().Copy(names_[0], names_[1]);
      ctx->lineage().Copy(names_[0], names_[1]);
      break;
    case Kind::kMove:
      if (!ctx->symbols().Contains(names_[0])) {
        return Status::RuntimeError("mvvar: undefined variable " + names_[0]);
      }
      ctx->symbols().Move(names_[0], names_[1]);
      ctx->lineage().Move(names_[0], names_[1]);
      break;
    case Kind::kRemove:
      for (const std::string& name : names_) {
        ctx->symbols().Remove(name);
        ctx->lineage().Remove(name);
      }
      break;
  }
  return Status::OK();
}

std::vector<std::string> VariableInstruction::InputVars() const {
  if (kind_ == Kind::kRemove) return {};
  return {names_[0]};
}

std::vector<std::string> VariableInstruction::OutputVars() const {
  if (kind_ == Kind::kRemove) return {};
  return {names_[1]};
}

std::string VariableInstruction::ToString() const {
  std::string out = opcode();
  for (const std::string& name : names_) {
    out += " ";
    out += name;
  }
  return out;
}

Status PrintInstruction::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, input_));
  std::ostream& out = ctx->print_stream();
  if (value->type() == DataType::kScalar) {
    out << static_cast<const ScalarData*>(value.get())
               ->value()
               .ToDisplayString()
        << "\n";
  } else if (value->type() == DataType::kMatrix) {
    out << static_cast<const MatrixData*>(value.get())->matrix()->ToString();
  } else {
    out << "<list of "
        << static_cast<const ListData*>(value.get())->size() << ">\n";
  }
  return Status::OK();
}

std::vector<std::string> PrintInstruction::InputVars() const {
  return input_.is_literal ? std::vector<std::string>{}
                           : std::vector<std::string>{input_.name};
}

Status StopInstruction::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, message_));
  std::string msg = "stop()";
  if (value->type() == DataType::kScalar) {
    msg = static_cast<const ScalarData*>(value.get())
              ->value()
              .ToDisplayString();
  }
  return Status::RuntimeError(msg);
}

std::vector<std::string> StopInstruction::InputVars() const {
  return message_.is_literal ? std::vector<std::string>{}
                             : std::vector<std::string>{message_.name};
}

Status ListInstruction::Execute(ExecutionContext* ctx) const {
  std::vector<DataPtr> values;
  std::vector<LineageItemPtr> items;
  values.reserve(elements_.size());
  items.reserve(elements_.size());
  for (const Operand& op : elements_) {
    LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, op));
    values.push_back(std::move(value));
    items.push_back(ctx->lineage_active() ? ResolveOperandLineage(ctx, op)
                                          : nullptr);
  }
  LineageItemPtr list_item;
  if (ctx->lineage_active()) {
    std::vector<LineageItemPtr> inputs = items;
    list_item = LineageItem::Create("list", std::move(inputs));
  }
  ctx->SetVariable(
      output_,
      std::make_shared<const ListData>(std::move(values), std::move(items)),
      std::move(list_item));
  return Status::OK();
}

std::vector<std::string> ListInstruction::InputVars() const {
  std::vector<std::string> vars;
  for (const Operand& op : elements_) {
    if (!op.is_literal) vars.push_back(op.name);
  }
  return vars;
}

Status ListIndexInstruction::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(DataPtr list_data, ResolveOperand(ctx, list_));
  LIMA_ASSIGN_OR_RETURN(auto list, AsList(list_data));
  LIMA_ASSIGN_OR_RETURN(DataPtr index_data, ResolveOperand(ctx, index_));
  LIMA_ASSIGN_OR_RETURN(double index_value, AsNumber(index_data));
  int64_t index = static_cast<int64_t>(std::llround(index_value));
  if (index < 1 || index > list->size()) {
    return Status::OutOfRange("list index " + std::to_string(index) +
                              " out of range [1," +
                              std::to_string(list->size()) + "]");
  }
  ctx->SetVariable(output_, list->elements()[index - 1],
                   ctx->lineage_active()
                       ? list->element_lineage()[index - 1]
                       : nullptr);
  return Status::OK();
}

std::vector<std::string> ListIndexInstruction::InputVars() const {
  std::vector<std::string> vars;
  if (!list_.is_literal) vars.push_back(list_.name);
  if (!index_.is_literal) vars.push_back(index_.name);
  return vars;
}

Status WriteInstruction::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, input_));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr matrix, AsMatrix(value));
  LIMA_ASSIGN_OR_RETURN(DataPtr path_data, ResolveOperand(ctx, path_));
  LIMA_ASSIGN_OR_RETURN(ScalarValue path_value, AsScalar(path_data));
  if (!path_value.is_string()) {
    return Status::TypeError("write: path must be a string");
  }
  const std::string& path = path_value.AsString();
  if (EndsWith(path, ".csv")) {
    LIMA_RETURN_NOT_OK(WriteMatrixCsv(path, *matrix));
  } else {
    LIMA_RETURN_NOT_OK(WriteMatrixFile(path, *matrix));
  }
  // Persist the lineage log alongside the data (Sec. 3.1).
  if (ctx->lineage_active() && !input_.is_literal) {
    LineageItemPtr item = ctx->lineage().Get(input_.name);
    if (item != nullptr) {
      std::ofstream log(path + ".lineage");
      if (!log) return Status::IoError("cannot write " + path + ".lineage");
      log << SerializeLineage(item);
    }
  }
  return Status::OK();
}

std::vector<std::string> WriteInstruction::InputVars() const {
  std::vector<std::string> vars;
  if (!input_.is_literal) vars.push_back(input_.name);
  if (!path_.is_literal) vars.push_back(path_.name);
  return vars;
}

Status ReadInstruction::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(DataPtr path_data, ResolveOperand(ctx, path_));
  LIMA_ASSIGN_OR_RETURN(ScalarValue path_value, AsScalar(path_data));
  if (!path_value.is_string()) {
    return Status::TypeError("read: path must be a string");
  }
  const std::string& path = path_value.AsString();
  Result<Matrix> matrix = EndsWith(path, ".csv") ? ReadMatrixCsv(path)
                                                 : ReadMatrixFile(path);
  LIMA_RETURN_NOT_OK(matrix.status());
  LineageItemPtr item;
  if (ctx->lineage_active()) {
    item = LineageItem::Create("read", {}, path);
    item->RecordDims(matrix.ValueOrDie().rows(), matrix.ValueOrDie().cols());
  }
  ctx->SetVariable(output_, MakeMatrixData(std::move(matrix).ValueOrDie()),
                   std::move(item));
  return Status::OK();
}

std::vector<std::string> ReadInstruction::InputVars() const {
  return path_.is_literal ? std::vector<std::string>{}
                          : std::vector<std::string>{path_.name};
}

Status LineageOfInstruction::Execute(ExecutionContext* ctx) const {
  if (input_.is_literal) {
    ctx->SetVariable(output_,
                     MakeStringData(LineageItem::CreateLiteral(
                                        input_.literal.EncodeLineageLiteral())
                                        ->ToString()),
                     nullptr);
    return Status::OK();
  }
  LineageItemPtr item = ctx->lineage().Get(input_.name);
  if (item == nullptr) {
    return Status::RuntimeError("lineage(" + input_.name +
                                "): no lineage traced (tracing disabled?)");
  }
  ctx->SetVariable(output_, MakeStringData(SerializeLineage(item)), nullptr);
  return Status::OK();
}

std::vector<std::string> LineageOfInstruction::InputVars() const {
  return input_.is_literal ? std::vector<std::string>{}
                           : std::vector<std::string>{input_.name};
}

Status CallFunction(ExecutionContext* ctx, const Function& fn,
                    const std::vector<DataPtr>& arg_values,
                    const std::vector<LineageItemPtr>& arg_items,
                    const std::vector<std::string>& output_vars) {
  if (ctx->call_depth() > 200) {
    return Status::RuntimeError("function call depth exceeded in " +
                                fn.name());
  }
  if (arg_values.size() > fn.params().size()) {
    return Status::Invalid("too many arguments for function " + fn.name());
  }
  if (output_vars.size() > fn.outputs().size()) {
    return Status::Invalid("too many outputs bound for function " + fn.name());
  }
  RuntimeStats* stats = ctx->stats();

  // Multi-level (function-level) reuse: probe a special "fcall" item that
  // bundles all outputs (Sec. 4.1).
  ReuseCache* cache = ctx->cache();
  LineageItemPtr fitem;
  bool claimed = false;
  const bool multilevel = ctx->reuse_active() &&
                          ctx->config().reuse_mode == ReuseMode::kMultiLevel &&
                          fn.deterministic() &&
                          arg_values.size() == arg_items.size();
  if (multilevel) {
    std::vector<LineageItemPtr> inputs = arg_items;
    fitem = LineageItem::Create("fcall", std::move(inputs), fn.name());
    if (stats != nullptr) {
      stats->cache_probes.fetch_add(1, std::memory_order_relaxed);
    }
    ReuseCache::ProbeResult probe = cache->Probe(fitem, /*claim=*/true);
    if (probe.kind == ReuseCache::ProbeKind::kHit &&
        probe.value->type() == DataType::kList) {
      auto bundle = std::static_pointer_cast<const ListData>(probe.value);
      if (bundle->size() >= static_cast<int64_t>(output_vars.size())) {
        for (size_t i = 0; i < output_vars.size(); ++i) {
          ctx->SetVariable(output_vars[i], bundle->elements()[i],
                           bundle->element_lineage()[i]);
        }
        if (stats != nullptr) {
          stats->function_reuse_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      }
    }
    claimed = probe.kind == ReuseCache::ProbeKind::kClaimed;
  }

  // Bind arguments (values + lineage) into a fresh function-local context.
  ExecutionContext child = ctx->MakeFunctionContext();
  for (size_t i = 0; i < fn.params().size(); ++i) {
    const Function::Param& param = fn.params()[i];
    if (i < arg_values.size()) {
      child.symbols().Set(param.name, arg_values[i]);
      if (child.tracing_enabled() && i < arg_items.size() &&
          arg_items[i] != nullptr) {
        child.lineage().Set(param.name, arg_items[i]);
      }
    } else if (param.has_default) {
      child.SetVariable(param.name, MakeScalarData(param.default_value),
                        child.tracing_enabled()
                            ? child.lineage().GetOrCreateLiteral(
                                  param.default_value.EncodeLineageLiteral())
                            : nullptr);
    } else {
      if (claimed) cache->Abort(fitem);
      return Status::Invalid("missing argument '" + param.name +
                             "' for function " + fn.name());
    }
  }

  StopWatch watch;
  Status status = ExecuteBlocks(fn.body(), &child);
  if (!status.ok()) {
    if (claimed) cache->Abort(fitem);
    return Status(status.code(), status.message() + " [in function " +
                                     fn.name() + "]");
  }
  double seconds = watch.ElapsedSeconds();

  // Copy outputs back to the caller.
  std::vector<DataPtr> out_values;
  std::vector<LineageItemPtr> out_items;
  for (const std::string& out_name : fn.outputs()) {
    Result<DataPtr> value = child.symbols().Get(out_name);
    if (!value.ok()) {
      if (claimed) cache->Abort(fitem);
      return Status::RuntimeError("function " + fn.name() +
                                  " did not assign output " + out_name);
    }
    out_values.push_back(std::move(value).ValueOrDie());
    out_items.push_back(child.lineage().Get(out_name));
  }
  for (size_t i = 0; i < output_vars.size(); ++i) {
    ctx->SetVariable(output_vars[i], out_values[i], out_items[i]);
  }
  if (claimed) {
    cache->Put(fitem,
               std::make_shared<const ListData>(std::move(out_values),
                                                std::move(out_items)),
               seconds);
  }
  return Status::OK();
}

Status FunctionCallInstruction::Execute(ExecutionContext* ctx) const {
  if (ctx->stats() != nullptr) {
    ctx->stats()->instructions_executed.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  if (ctx->program() == nullptr) {
    return Status::RuntimeError("no program registered for function calls");
  }
  const Function* fn = ctx->program()->GetFunction(function_name_);
  if (fn == nullptr) {
    return Status::RuntimeError("undefined function: " + function_name_);
  }
  std::vector<DataPtr> values;
  std::vector<LineageItemPtr> items;
  values.reserve(args_.size());
  for (const Operand& arg : args_) {
    LIMA_ASSIGN_OR_RETURN(DataPtr value, ResolveOperand(ctx, arg));
    values.push_back(std::move(value));
    items.push_back(ctx->tracing_enabled() ? ResolveOperandLineage(ctx, arg)
                                           : nullptr);
  }
  return CallFunction(ctx, *fn, values, items, output_vars_);
}

std::vector<std::string> FunctionCallInstruction::InputVars() const {
  std::vector<std::string> vars;
  for (const Operand& arg : args_) {
    if (!arg.is_literal) vars.push_back(arg.name);
  }
  return vars;
}

std::string FunctionCallInstruction::ToString() const {
  std::string out = "fcall " + function_name_;
  for (const Operand& arg : args_) {
    out += " ";
    out += arg.DebugString();
  }
  out += " ->";
  for (const std::string& o : output_vars_) {
    out += " ";
    out += o;
  }
  return out;
}

Status EvalInstruction::Execute(ExecutionContext* ctx) const {
  if (ctx->program() == nullptr) {
    return Status::RuntimeError("no program registered for eval()");
  }
  LIMA_ASSIGN_OR_RETURN(DataPtr name_data, ResolveOperand(ctx, function_name_));
  LIMA_ASSIGN_OR_RETURN(ScalarValue name_value, AsScalar(name_data));
  if (!name_value.is_string()) {
    return Status::TypeError("eval: function name must be a string");
  }
  const Function* fn = ctx->program()->GetFunction(name_value.AsString());
  if (fn == nullptr) {
    return Status::RuntimeError("eval: undefined function: " +
                                name_value.AsString());
  }
  LIMA_ASSIGN_OR_RETURN(DataPtr args_data, ResolveOperand(ctx, args_list_));
  LIMA_ASSIGN_OR_RETURN(auto args, AsList(args_data));
  return CallFunction(ctx, *fn, args->elements(), args->element_lineage(),
                      {output_});
}

std::vector<std::string> EvalInstruction::InputVars() const {
  std::vector<std::string> vars;
  if (!function_name_.is_literal) vars.push_back(function_name_.name);
  if (!args_list_.is_literal) vars.push_back(args_list_.name);
  return vars;
}

}  // namespace lima
