#ifndef LIMA_RUNTIME_PROGRAM_H_
#define LIMA_RUNTIME_PROGRAM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/instruction.h"
#include "runtime/static_plan.h"

namespace lima {

enum class BlockKind { kBasic, kIf, kFor, kWhile, kParFor };

/// A node of the hierarchical program structure produced by program
/// compilation (Sec. 2.2): control flow is handled by the ML system itself,
/// and last-level blocks hold linearized instruction sequences.
class ProgramBlock {
 public:
  virtual ~ProgramBlock() = default;
  virtual BlockKind kind() const = 0;
  virtual Status Execute(ExecutionContext* ctx) const = 0;
};

using BlockPtr = std::unique_ptr<ProgramBlock>;

/// Executes a block sequence in order.
Status ExecuteBlocks(const std::vector<BlockPtr>& blocks,
                     ExecutionContext* ctx);

/// A last-level block: a linearized sequence of runtime instructions.
///
/// Blocks are the middle granularity of multi-level reuse (Sec. 4.1):
/// deterministic blocks with statically known inputs/outputs are probed as a
/// whole under ReuseMode::kMultiLevel, skipping both interpretation and
/// per-operation probing on a hit.
class BasicBlock : public ProgramBlock {
 public:
  /// Block-level reuse metadata, filled by AnalyzeProgram.
  struct ReuseInfo {
    bool eligible = false;  ///< deterministic, side-effect free, big enough
    std::vector<std::string> inputs;   ///< live-in variables
    std::vector<std::string> outputs;  ///< variables surviving the block
    uint64_t signature = 0;  ///< structural hash distinguishing blocks
  };

  BlockKind kind() const override { return BlockKind::kBasic; }
  Status Execute(ExecutionContext* ctx) const override;

  void Append(std::unique_ptr<Instruction> instruction) {
    instructions_.push_back(std::move(instruction));
  }
  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }
  std::vector<std::unique_ptr<Instruction>>* mutable_instructions() {
    return &instructions_;
  }

  ReuseInfo* mutable_reuse_info() { return &reuse_info_; }
  const ReuseInfo& reuse_info() const { return reuse_info_; }

 private:
  /// Executes the instruction sequence without block-level probing.
  Status ExecuteInstructions(ExecutionContext* ctx) const;

  std::vector<std::unique_ptr<Instruction>> instructions_;
  ReuseInfo reuse_info_;
};

/// A compiled predicate: a small instruction sequence whose result is left
/// in `result_var`.
class Predicate {
 public:
  Predicate() = default;
  Predicate(BasicBlock block, std::string result_var)
      : block_(std::move(block)), result_var_(std::move(result_var)) {}

  /// Executes the predicate instructions and reads the scalar result.
  Result<ScalarValue> Evaluate(ExecutionContext* ctx) const;

  BasicBlock* mutable_block() { return &block_; }
  const BasicBlock& block() const { return block_; }
  const std::string& result_var() const { return result_var_; }
  void set_result_var(std::string var) { result_var_ = std::move(var); }

 private:
  BasicBlock block_;
  std::string result_var_;
};

/// if (pred) { ... } else { ... }. Inside deduplicated loops the block
/// carries a branch ID whose outcome is recorded in the control-path
/// bitvector (Sec. 3.2).
class IfBlock : public ProgramBlock {
 public:
  BlockKind kind() const override { return BlockKind::kIf; }
  Status Execute(ExecutionContext* ctx) const override;

  Predicate* mutable_predicate() { return &predicate_; }
  const Predicate& predicate() const { return predicate_; }
  std::vector<BlockPtr>* mutable_then_blocks() { return &then_blocks_; }
  std::vector<BlockPtr>* mutable_else_blocks() { return &else_blocks_; }
  const std::vector<BlockPtr>& then_blocks() const { return then_blocks_; }
  const std::vector<BlockPtr>& else_blocks() const { return else_blocks_; }

  int branch_id() const { return branch_id_; }
  void set_branch_id(int id) { branch_id_ = id; }

 private:
  Predicate predicate_;
  std::vector<BlockPtr> then_blocks_;
  std::vector<BlockPtr> else_blocks_;
  int branch_id_ = -1;
};

/// Shared dedup metadata of loops, filled by AnalyzeProgram (analysis.h).
struct LoopDedupInfo {
  bool eligible = false;           ///< last-level loop, <= 20 branches
  int num_branches = 0;            ///< if-blocks in the body (DFS order)
  std::vector<std::string> body_inputs;   ///< live-in variables of the body
  std::vector<std::string> body_outputs;  ///< variables written by the body
};

/// for (i in from:to [step incr]) { ... } — also the base of parfor.
class ForBlock : public ProgramBlock {
 public:
  BlockKind kind() const override { return BlockKind::kFor; }
  Status Execute(ExecutionContext* ctx) const override;

  void set_iter_var(std::string var) { iter_var_ = std::move(var); }
  const std::string& iter_var() const { return iter_var_; }
  Predicate* mutable_from() { return &from_; }
  Predicate* mutable_to() { return &to_; }
  Predicate* mutable_incr() { return &incr_; }
  const Predicate& from() const { return from_; }
  const Predicate& to() const { return to_; }
  const Predicate& incr() const { return incr_; }
  void set_has_incr(bool has) { has_incr_ = has; }
  std::vector<BlockPtr>* mutable_body() { return &body_; }
  const std::vector<BlockPtr>& body() const { return body_; }

  LoopDedupInfo* mutable_dedup_info() { return &dedup_info_; }
  const LoopDedupInfo& dedup_info() const { return dedup_info_; }

 protected:
  /// Evaluates from/to/incr and returns the iteration values.
  Result<std::vector<int64_t>> EvaluateRange(ExecutionContext* ctx) const;

  /// Runs one iteration body with dedup-aware lineage tracing.
  Status ExecuteIteration(ExecutionContext* ctx, int64_t iter_value) const;

  std::string iter_var_;
  Predicate from_;
  Predicate to_;
  Predicate incr_;
  bool has_incr_ = false;
  std::vector<BlockPtr> body_;
  LoopDedupInfo dedup_info_;
};

/// Verdict of the compile-time parfor loop-dependency analysis
/// (analysis/parfor_dependency.h): parallel iterations are only sound when
/// no iteration reads or overwrites data another iteration writes.
enum class ParForSafety {
  kSafe,       ///< iterations proven independent; run parallel
  kSerialize,  ///< independence unproven; degrade to sequential execution
  kReject,     ///< carried dependence proven; error under strict verification
};

const char* ParForSafetyName(ParForSafety verdict);

/// One dependency-analysis finding, with provenance like the verifier's
/// diagnostics. `blocking` findings prove a carried dependence (verdict
/// kReject); non-blocking ones only fail to prove independence (kSerialize).
struct ParForFinding {
  bool blocking = false;
  std::string code;     ///< stable identifier, e.g. "carried-dependence"
  std::string message;  ///< human-readable description
  int source_line = 0;  ///< 1-based script line; 0 = unknown
};

/// Dependency-analysis annotation of one parfor block, filled at compile
/// time. Unanalyzed blocks (hand-built programs, analysis disabled) keep
/// `analyzed == false` and execute parallel as before.
struct ParForDepInfo {
  bool analyzed = false;
  ParForSafety verdict = ParForSafety::kSafe;
  std::vector<ParForFinding> findings;

  /// Variables the body whole-assigns (and never indexed-writes): the
  /// result merge must take the last writer in worker order wholesale
  /// instead of the cell-wise diff used for sliced results — a late write
  /// that restores a cell's initial value would otherwise let an earlier
  /// worker's differing cell survive the diff.
  std::vector<std::string> plain_overwrites;

  /// One line per finding: "parfor(line N) verdict: code: message".
  std::string ToString() const;
};

/// Task-parallel parfor (Sec. 3.3): iterations are distributed over worker
/// threads with worker-local symbol tables and lineage; results (variables
/// that existed before the loop and were overwritten) are merged back, and
/// their lineage is linearized into a "parfor-merge" item. Workers share
/// the lineage cache (thread-safe, with placeholders — Sec. 4.1).
///
/// A compiled parfor carries the loop-dependency verdict; Execute degrades
/// to one worker unless the analysis proved the iterations race-free.
class ParForBlock : public ForBlock {
 public:
  BlockKind kind() const override { return BlockKind::kParFor; }
  Status Execute(ExecutionContext* ctx) const override;

  ParForDepInfo* mutable_dep_info() { return &dep_info_; }
  const ParForDepInfo& dep_info() const { return dep_info_; }

  /// 1-based script line of the parfor header; 0 = unknown.
  int source_line() const { return source_line_; }
  void set_source_line(int line) { source_line_ = line; }

 private:
  ParForDepInfo dep_info_;
  int source_line_ = 0;
};

/// while (pred) { ... }.
class WhileBlock : public ProgramBlock {
 public:
  BlockKind kind() const override { return BlockKind::kWhile; }
  Status Execute(ExecutionContext* ctx) const override;

  Predicate* mutable_predicate() { return &predicate_; }
  const Predicate& predicate() const { return predicate_; }
  std::vector<BlockPtr>* mutable_body() { return &body_; }
  const std::vector<BlockPtr>& body() const { return body_; }

  LoopDedupInfo* mutable_dedup_info() { return &dedup_info_; }
  const LoopDedupInfo& dedup_info() const { return dedup_info_; }

  /// Safety bound against nonterminating scripts (0 = unbounded).
  void set_max_iterations(int64_t n) { max_iterations_ = n; }

 private:
  Status ExecuteIteration(ExecutionContext* ctx) const;

  Predicate predicate_;
  std::vector<BlockPtr> body_;
  LoopDedupInfo dedup_info_;
  int64_t max_iterations_ = 10'000'000;
};

/// A user-defined function: named parameters (with optional scalar
/// defaults), named outputs, and a body of program blocks.
class Function {
 public:
  struct Param {
    std::string name;
    bool has_default = false;
    ScalarValue default_value;
  };

  Function(std::string name, std::vector<Param> params,
           std::vector<std::string> outputs)
      : name_(std::move(name)),
        params_(std::move(params)),
        outputs_(std::move(outputs)) {}

  const std::string& name() const { return name_; }
  const std::vector<Param>& params() const { return params_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  std::vector<BlockPtr>* mutable_body() { return &body_; }
  const std::vector<BlockPtr>& body() const { return body_; }

  /// Deterministic functions qualify for multi-level reuse (Sec. 4.1);
  /// computed by AnalyzeProgram.
  bool deterministic() const { return deterministic_; }
  void set_deterministic(bool value) { deterministic_ = value; }

 private:
  std::string name_;
  std::vector<Param> params_;
  std::vector<std::string> outputs_;
  std::vector<BlockPtr> body_;
  bool deterministic_ = false;
};

/// A compiled script: a function registry plus the main block sequence.
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Registers a function (replaces an existing definition).
  void AddFunction(std::unique_ptr<Function> fn);

  /// nullptr when undefined.
  const Function* GetFunction(const std::string& name) const;
  Function* GetMutableFunction(const std::string& name);

  const std::unordered_map<std::string, std::unique_ptr<Function>>& functions()
      const {
    return functions_;
  }

  std::vector<BlockPtr>* mutable_main() { return &main_; }
  const std::vector<BlockPtr>& main() const { return main_; }

  /// Compile-time redundancy & cost plan (analysis/redundancy.h). Empty
  /// (analyzed = false) unless the compile pipeline ran the static planner
  /// (LimaConfig::redundancy_check).
  const StaticPlan& static_plan() const { return static_plan_; }
  StaticPlan* mutable_static_plan() { return &static_plan_; }

  /// Executes the main block sequence against `ctx`.
  Status Execute(ExecutionContext* ctx) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Function>> functions_;
  std::vector<BlockPtr> main_;
  StaticPlan static_plan_;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_PROGRAM_H_
