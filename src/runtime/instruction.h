#ifndef LIMA_RUNTIME_INSTRUCTION_H_
#define LIMA_RUNTIME_INSTRUCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/opcode_registry.h"
#include "common/result.h"
#include "runtime/execution_context.h"
#include "runtime/static_plan.h"

namespace lima {

/// An instruction operand: either a live-variable reference or an inlined
/// scalar literal (as in SystemDS runtime instructions, Fig. 2).
struct Operand {
  static Operand Var(std::string name) {
    Operand op;
    op.is_literal = false;
    op.name = std::move(name);
    return op;
  }
  static Operand Lit(ScalarValue value) {
    Operand op;
    op.is_literal = true;
    op.literal = std::move(value);
    return op;
  }
  static Operand LitDouble(double v) { return Lit(ScalarValue::Double(v)); }
  static Operand LitInt(int64_t v) { return Lit(ScalarValue::Int(v)); }
  static Operand LitBool(bool v) { return Lit(ScalarValue::Bool(v)); }
  static Operand LitString(std::string v) {
    return Lit(ScalarValue::String(std::move(v)));
  }

  std::string DebugString() const {
    return is_literal ? literal.ToDisplayString() : name;
  }

  bool is_literal = false;
  std::string name;
  ScalarValue literal;
};

/// Resolves an operand to its runtime value.
Result<DataPtr> ResolveOperand(ExecutionContext* ctx, const Operand& op);

/// Resolves an operand to its lineage item (literals use the shared literal
/// cache; untracked variables get unique orphan leaves).
LineageItemPtr ResolveOperandLineage(ExecutionContext* ctx, const Operand& op);

/// Base class of all runtime instructions. Instructions are immutable and
/// shared across iterations/threads; all mutable state lives in the
/// ExecutionContext.
class Instruction {
 public:
  /// Interns the opcode once at construction; all per-execution paths
  /// (lineage tracing, cache probing, profiling, dispatch) use the id.
  explicit Instruction(std::string_view opcode)
      : opcode_id_(InternOpcode(opcode)) {}
  explicit Instruction(OpcodeId opcode) : opcode_id_(opcode) {}
  virtual ~Instruction() = default;

  Instruction(const Instruction&) = delete;
  Instruction& operator=(const Instruction&) = delete;

  virtual Status Execute(ExecutionContext* ctx) const = 0;

  OpcodeId opcode_id() const { return opcode_id_; }
  /// Display name of opcode_id() (stable reference).
  const std::string& opcode() const { return OpcodeName(opcode_id_); }

  /// Variables read / written (live-variable analysis, Sec. 3.2/4.1).
  virtual std::vector<std::string> InputVars() const = 0;
  virtual std::vector<std::string> OutputVars() const = 0;

  /// False for operations with runtime nondeterminism (system-generated
  /// seeds). Used for function-determinism analysis (multi-level reuse).
  virtual bool IsDeterministic() const { return true; }

  /// Compiler-assisted unmarking (Sec. 4.4): when false, this operation
  /// instance neither probes nor populates the cache.
  bool reuse_marked() const { return reuse_marked_; }
  void set_reuse_marked(bool marked) { reuse_marked_ = marked; }

  /// 1-based script line this instruction was compiled from; 0 when unknown
  /// (hand-built programs). Used for diagnostic provenance (`lima verify`).
  int source_line() const { return source_line_; }
  void set_source_line(int line) { source_line_ = line; }

  virtual std::string ToString() const;

 protected:
  OpcodeId opcode_id_;
  bool reuse_marked_ = true;
  int source_line_ = 0;
};

/// Base class for value-producing instructions; implements the LIMA
/// execute flow (Sec. 3.1/4.1):
///   1. resolve inputs,
///   2. obtain output lineage *before* execution,
///   3. probe the lineage cache (full reuse, then partial-rewrite reuse),
///   4. on miss: execute the kernel, bind outputs, populate the cache.
class ComputationInstruction : public Instruction {
 public:
  ComputationInstruction(std::string_view opcode,
                         std::vector<Operand> operands,
                         std::vector<std::string> outputs)
      : Instruction(opcode),
        operands_(std::move(operands)),
        outputs_(std::move(outputs)) {}
  ComputationInstruction(OpcodeId opcode, std::vector<Operand> operands,
                         std::vector<std::string> outputs)
      : Instruction(opcode),
        operands_(std::move(operands)),
        outputs_(std::move(outputs)) {}

  Status Execute(ExecutionContext* ctx) const final;

  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return outputs_; }

  const std::vector<Operand>& operands() const { return operands_; }

  /// Bit i set = operand i is this variable's last use in its block (the
  /// binding dies — by rmvar or redefinition — before any later read), so
  /// the runtime may execute the op in place by stealing that operand's
  /// buffer *when* the refcount proves no other alias exists. Set by the
  /// compile-time liveness pass (analysis/liveness.h); advisory only —
  /// the refcount check at execute time is the safety proof.
  uint32_t last_use_mask() const { return last_use_mask_; }
  void set_last_use_mask(uint32_t mask) { last_use_mask_ = mask; }

  /// Static reuse-planner verdict (analysis/redundancy.h): kMustCompute
  /// makes Execute skip the cache probe (and put) for this instruction —
  /// recomputing is provably cheaper than probing and no equal value can
  /// exist in the cache. Stamped by AttachStaticPlan when
  /// LimaConfig::redundancy_check is on; the default never skips.
  ProbeVerdict probe_verdict() const { return probe_verdict_; }
  void set_probe_verdict(ProbeVerdict verdict) { probe_verdict_ = verdict; }

  std::string ToString() const override;

 protected:
  /// Per-execution transient state (e.g. a system-generated seed); lives on
  /// the stack of Execute so shared instructions stay immutable.
  struct ExecState {
    bool has_seed = false;
    uint64_t seed = 0;
    /// Lineage of the system-generated seed: a literal item normally, a
    /// patch placeholder under dedup tracing, nullptr in dedup lite mode.
    LineageItemPtr seed_item;
  };

  /// Hook run first; nondeterministic ops draw their seed here.
  virtual Status PrepareExec(ExecutionContext* ctx, ExecState* state) const {
    (void)ctx;
    (void)state;
    return Status::OK();
  }

  /// Computes the output values from resolved inputs (one per output name).
  virtual Result<std::vector<DataPtr>> Compute(
      ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
      const ExecState& state) const = 0;

  /// Builds the per-output lineage items. Default: a single item
  /// Create(opcode, input_items) shared by all outputs, with ";o<i>" data
  /// suffixes for multi-output instructions.
  virtual std::vector<LineageItemPtr> BuildLineage(
      ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
      const ExecState& state) const;

  /// Whether this op participates in reuse: operator-catalog membership
  /// (Sec. 4.1: the configurable set of cacheable instructions) gated by
  /// compiler-assisted unmarking. The id-keyed lookup is O(1) — no string
  /// hashing on the per-execution path.
  virtual bool IsReusableOp() const {
    return reuse_marked_ && IsReusableOpcode(opcode_id_);
  }

  /// Source instructions (datagen, read) return true so Execute records the
  /// produced matrix dimensions on their lineage items (LineageItem::
  /// RecordDims) — shape provenance for lineage consumers.
  virtual bool RecordsLineageDims() const { return false; }

  std::vector<Operand> operands_;
  std::vector<std::string> outputs_;
  uint32_t last_use_mask_ = 0;
  ProbeVerdict probe_verdict_ = ProbeVerdict::kProbeWorthwhile;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTION_H_
