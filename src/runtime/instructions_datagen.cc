#include "runtime/instructions_datagen.h"

#include <cmath>

#include "common/rng.h"
#include "matrix/datagen.h"
#include "matrix/reorg.h"

namespace lima {

namespace {

Result<int64_t> AsCount(const DataPtr& data) {
  LIMA_ASSIGN_OR_RETURN(double v, AsNumber(data));
  return static_cast<int64_t>(std::llround(v));
}

}  // namespace

DataGenInstruction::DataGenInstruction(std::string opcode,
                                       std::vector<Operand> operands,
                                       std::string output)
    : ComputationInstruction(std::move(opcode), std::move(operands),
                             {std::move(output)}) {}

int DataGenInstruction::seed_operand_index() const {
  if (opcode() == "rand") return 6;
  if (opcode() == "sample") return 2;
  return -1;
}

bool DataGenInstruction::IsDeterministic() const {
  int idx = seed_operand_index();
  if (idx < 0) return true;
  const Operand& seed = operands_[idx];
  // Only a literal, non-negative seed is statically deterministic.
  return seed.is_literal && seed.literal.is_numeric() &&
         seed.literal.AsDouble() >= 0.0;
}

Status DataGenInstruction::PrepareExec(ExecutionContext* ctx,
                                       ExecState* state) const {
  int idx = seed_operand_index();
  if (idx < 0) return Status::OK();
  LIMA_ASSIGN_OR_RETURN(DataPtr seed_data, ResolveOperand(ctx, operands_[idx]));
  LIMA_ASSIGN_OR_RETURN(double seed_value, AsNumber(seed_data));
  if (seed_value >= 0.0) return Status::OK();  // Explicit user seed.

  // System-generated seed: drawn before lineage so it can be traced.
  state->has_seed = true;
  state->seed = NextSystemSeed();
  std::string encoded =
      ScalarValue::Int(static_cast<int64_t>(state->seed)).EncodeLineageLiteral();
  if (ctx->dedup_tracer() != nullptr) {
    state->seed_item = ctx->dedup_tracer()->RegisterSeed(encoded);
  } else if (ctx->lineage_active()) {
    state->seed_item = ctx->lineage().GetOrCreateLiteral(encoded);
  }
  return Status::OK();
}

std::vector<LineageItemPtr> DataGenInstruction::BuildLineage(
    ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
    const ExecState& state) const {
  (void)ctx;
  std::vector<LineageItemPtr> items = input_items;
  int idx = seed_operand_index();
  if (state.has_seed && idx >= 0 && state.seed_item != nullptr) {
    items[idx] = state.seed_item;
  }
  return {LineageItem::Create(opcode_id_, std::move(items))};
}

Result<std::vector<DataPtr>> DataGenInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  if (opcode() == "rand") {
    LIMA_ASSIGN_OR_RETURN(int64_t rows, AsCount(inputs[0]));
    LIMA_ASSIGN_OR_RETURN(int64_t cols, AsCount(inputs[1]));
    LIMA_ASSIGN_OR_RETURN(double min_v, AsNumber(inputs[2]));
    LIMA_ASSIGN_OR_RETURN(double max_v, AsNumber(inputs[3]));
    LIMA_ASSIGN_OR_RETURN(double sparsity, AsNumber(inputs[4]));
    LIMA_ASSIGN_OR_RETURN(ScalarValue pdf, AsScalar(inputs[5]));
    RandPdf kind = RandPdf::kUniform;
    if (pdf.is_string() && pdf.AsString() == "normal") {
      kind = RandPdf::kNormal;
    }
    uint64_t seed;
    if (state.has_seed) {
      seed = state.seed;
    } else {
      LIMA_ASSIGN_OR_RETURN(double s, AsNumber(inputs[6]));
      seed = static_cast<uint64_t>(std::llround(s));
    }
    LIMA_ASSIGN_OR_RETURN(Matrix r,
                          Rand(rows, cols, min_v, max_v, sparsity, kind, seed,
                               ctx->parallel()));
    return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
  }
  if (opcode() == "sample") {
    LIMA_ASSIGN_OR_RETURN(int64_t range, AsCount(inputs[0]));
    LIMA_ASSIGN_OR_RETURN(int64_t size, AsCount(inputs[1]));
    uint64_t seed;
    if (state.has_seed) {
      seed = state.seed;
    } else {
      LIMA_ASSIGN_OR_RETURN(double s, AsNumber(inputs[2]));
      seed = static_cast<uint64_t>(std::llround(s));
    }
    LIMA_ASSIGN_OR_RETURN(Matrix r, Sample(range, size, seed));
    return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
  }
  if (opcode() == "seq") {
    LIMA_ASSIGN_OR_RETURN(double from, AsNumber(inputs[0]));
    LIMA_ASSIGN_OR_RETURN(double to, AsNumber(inputs[1]));
    LIMA_ASSIGN_OR_RETURN(double incr, AsNumber(inputs[2]));
    LIMA_ASSIGN_OR_RETURN(Matrix r, SeqMatrix(from, to, incr));
    return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
  }
  if (opcode() == "fill") {
    LIMA_ASSIGN_OR_RETURN(int64_t rows, AsCount(inputs[1]));
    LIMA_ASSIGN_OR_RETURN(int64_t cols, AsCount(inputs[2]));
    if (rows < 0 || cols < 0) {
      return Status::Invalid("matrix(): negative dimensions");
    }
    // matrix(X, rows, cols) with a matrix argument is a row-major reshape.
    if (inputs[0]->type() == DataType::kMatrix) {
      LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
      LIMA_ASSIGN_OR_RETURN(Matrix r, Reshape(*m, rows, cols));
      return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
    }
    LIMA_ASSIGN_OR_RETURN(double value, AsNumber(inputs[0]));
    return std::vector<DataPtr>{MakeMatrixData(Matrix(rows, cols, value))};
  }
  return Status::NotImplemented("unknown datagen op: " + opcode());
}

}  // namespace lima
