#ifndef LIMA_RUNTIME_RECONSTRUCT_H_
#define LIMA_RUNTIME_RECONSTRUCT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/lineage_item.h"
#include "runtime/program.h"

namespace lima {

/// Result of lineage-based program reconstruction (Sec. 3.1, Fig. 3
/// "reconstruct"): a straight-line program (no control flow) that — given
/// the same inputs — recomputes exactly the intermediate the lineage DAG
/// describes.
struct ReconstructedProgram {
  std::unique_ptr<Program> program;
  /// Names of external inputs ("read" leaves) the caller must bind in the
  /// execution context before running the program.
  std::vector<std::string> input_names;
  /// Variable holding the recomputed intermediate after execution.
  std::string output_var;
};

/// Compiles the lineage DAG rooted at `root` into a runnable program.
/// Dedup patches are compiled into functions (not expanded inline), and each
/// dedup item becomes a single function call — preserving the deduplication
/// through reconstruction (Sec. 3.2).
Result<ReconstructedProgram> ReconstructProgram(const LineageItemPtr& root);

}  // namespace lima

#endif  // LIMA_RUNTIME_RECONSTRUCT_H_
