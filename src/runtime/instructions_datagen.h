#ifndef LIMA_RUNTIME_INSTRUCTIONS_DATAGEN_H_
#define LIMA_RUNTIME_INSTRUCTIONS_DATAGEN_H_

#include <string>
#include <vector>

#include "runtime/instruction.h"

namespace lima {

/// Data generation instructions:
///  - "rand":   operands (rows, cols, min, max, sparsity, pdf, seed)
///  - "sample": operands (range, size, seed)
///  - "seq":    operands (from, to, incr)
///  - "fill":   operands (value, rows, cols)        [matrix(v, r, c)]
///
/// For "rand"/"sample", a seed of -1 requests a system-generated seed; LIMA
/// draws it *before* lineage construction and exposes it as a literal
/// lineage input, making the nondeterministic operation reproducible and
/// reusable (Sec. 3.1). Under dedup tracing the seed becomes a patch
/// placeholder (Sec. 3.2).
class DataGenInstruction : public ComputationInstruction {
 public:
  DataGenInstruction(std::string opcode, std::vector<Operand> operands,
                     std::string output);

  bool IsDeterministic() const override;

  bool RecordsLineageDims() const override { return true; }

 protected:
  Status PrepareExec(ExecutionContext* ctx, ExecState* state) const override;

  std::vector<LineageItemPtr> BuildLineage(
      ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
      const ExecState& state) const override;

  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  /// Index of the seed operand, or -1 for deterministic generators.
  int seed_operand_index() const;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTIONS_DATAGEN_H_
