#include "runtime/instructions_matrix.h"

#include <cmath>

#include "matrix/factorize.h"
#include "matrix/indexing.h"
#include "matrix/matmul.h"
#include "matrix/reorg.h"

namespace lima {

namespace {

Result<int64_t> AsIndex(const DataPtr& data) {
  LIMA_ASSIGN_OR_RETURN(double v, AsNumber(data));
  return static_cast<int64_t>(std::llround(v));
}

std::vector<DataPtr> One(Matrix&& m) {
  return std::vector<DataPtr>{MakeMatrixData(std::move(m))};
}

}  // namespace

MatMulInstruction::MatMulInstruction(Operand a, Operand b, std::string output)
    : ComputationInstruction("mm", {std::move(a), std::move(b)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> MatMulInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr b, AsMatrix(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, MatMul(*a, *b, ctx->parallel()));
  return One(std::move(r));
}

TsmmInstruction::TsmmInstruction(Operand x, std::string output, bool left)
    : ComputationInstruction(left ? "tsmm" : "tmm", {std::move(x)},
                             {std::move(output)}),
      left_(left) {}

Result<std::vector<DataPtr>> TsmmInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr x, AsMatrix(inputs[0]));
  return One(Tsmm(*x, left_, ctx->parallel()));
}

ReorgInstruction::ReorgInstruction(std::string opcode, Operand input,
                                   std::string output)
    : ComputationInstruction(std::move(opcode), {std::move(input)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> ReorgInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  if (opcode() == "t") return One(Transpose(*m));
  if (opcode() == "rev") return One(ReverseRows(*m));
  if (opcode() == "diag") {
    LIMA_ASSIGN_OR_RETURN(Matrix r, Diag(*m));
    return One(std::move(r));
  }
  return Status::NotImplemented("unknown reorg op: " + opcode());
}

ReshapeInstruction::ReshapeInstruction(Operand x, Operand rows, Operand cols,
                                       std::string output)
    : ComputationInstruction(
          "reshape", {std::move(x), std::move(rows), std::move(cols)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> ReshapeInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(int64_t rows, AsIndex(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(int64_t cols, AsIndex(inputs[2]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, Reshape(*m, rows, cols));
  return One(std::move(r));
}

AppendInstruction::AppendInstruction(bool cbind, Operand a, Operand b,
                                     std::string output)
    : ComputationInstruction(cbind ? "cbind" : "rbind",
                             {std::move(a), std::move(b)},
                             {std::move(output)}),
      cbind_(cbind) {}

Result<std::vector<DataPtr>> AppendInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr b, AsMatrix(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, cbind_ ? CBind(*a, *b) : RBind(*a, *b));
  return One(std::move(r));
}

RightIndexInstruction::RightIndexInstruction(Operand x, Operand row_lower,
                                             Operand row_upper,
                                             Operand col_lower,
                                             Operand col_upper,
                                             std::string output)
    : ComputationInstruction(
          "rightindex",
          {std::move(x), std::move(row_lower), std::move(row_upper),
           std::move(col_lower), std::move(col_upper)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> RightIndexInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(int64_t rl, AsIndex(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(int64_t ru, AsIndex(inputs[2]));
  LIMA_ASSIGN_OR_RETURN(int64_t cl, AsIndex(inputs[3]));
  LIMA_ASSIGN_OR_RETURN(int64_t cu, AsIndex(inputs[4]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, RightIndex(*m, rl, ru, cl, cu));
  return One(std::move(r));
}

LeftIndexInstruction::LeftIndexInstruction(Operand x, Operand y,
                                           Operand row_lower,
                                           Operand row_upper,
                                           Operand col_lower,
                                           Operand col_upper,
                                           std::string output)
    : ComputationInstruction(
          "leftindex",
          {std::move(x), std::move(y), std::move(row_lower),
           std::move(row_upper), std::move(col_lower), std::move(col_upper)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> LeftIndexInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(int64_t rl, AsIndex(inputs[2]));
  LIMA_ASSIGN_OR_RETURN(int64_t ru, AsIndex(inputs[3]));
  LIMA_ASSIGN_OR_RETURN(int64_t cl, AsIndex(inputs[4]));
  LIMA_ASSIGN_OR_RETURN(int64_t cu, AsIndex(inputs[5]));
  // Scalar sources are implicitly cast to 1x1 (DML X[i,j] = s).
  Matrix src(0, 0);
  if (inputs[1]->type() == DataType::kScalar) {
    LIMA_ASSIGN_OR_RETURN(double v, AsNumber(inputs[1]));
    src = Matrix(1, 1, v);
  } else {
    LIMA_ASSIGN_OR_RETURN(MatrixPtr s, AsMatrix(inputs[1]));
    src = *s;
  }
  LIMA_ASSIGN_OR_RETURN(Matrix r, LeftIndex(*m, src, rl, ru, cl, cu));
  return One(std::move(r));
}

SelectInstruction::SelectInstruction(bool columns, Operand x, Operand indices,
                                     std::string output)
    : ComputationInstruction(columns ? "selcols" : "selrows",
                             {std::move(x), std::move(indices)},
                             {std::move(output)}),
      columns_(columns) {}

Result<std::vector<DataPtr>> SelectInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  // Scalar indices select a single column/row (X[, k]).
  Matrix idx(1, 1);
  if (inputs[1]->type() == DataType::kScalar) {
    LIMA_ASSIGN_OR_RETURN(double v, AsNumber(inputs[1]));
    idx.At(0, 0) = v;
  } else {
    LIMA_ASSIGN_OR_RETURN(MatrixPtr im, AsMatrix(inputs[1]));
    idx = *im;
  }
  LIMA_ASSIGN_OR_RETURN(
      Matrix r, columns_ ? SelectColumns(*m, idx) : SelectRows(*m, idx));
  return One(std::move(r));
}

SolveInstruction::SolveInstruction(Operand a, Operand b, std::string output)
    : ComputationInstruction("solve", {std::move(a), std::move(b)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> SolveInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr b, AsMatrix(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, Solve(*a, *b));
  return One(std::move(r));
}

CholeskyInstruction::CholeskyInstruction(Operand a, std::string output)
    : ComputationInstruction("cholesky", {std::move(a)}, {std::move(output)}) {
}

Result<std::vector<DataPtr>> CholeskyInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, Cholesky(*a));
  return One(std::move(r));
}

EigenInstruction::EigenInstruction(Operand a, std::string values_output,
                                   std::string vectors_output)
    : ComputationInstruction(
          "eigen", {std::move(a)},
          {std::move(values_output), std::move(vectors_output)}) {}

Result<std::vector<DataPtr>> EigenInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(auto pair, EigenSymmetric(*a));
  return std::vector<DataPtr>{MakeMatrixData(std::move(pair.first)),
                              MakeMatrixData(std::move(pair.second))};
}

TableInstruction::TableInstruction(Operand v1, Operand v2, Operand out_rows,
                                   Operand out_cols, std::string output)
    : ComputationInstruction(
          "table",
          {std::move(v1), std::move(v2), std::move(out_rows),
           std::move(out_cols)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> TableInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr v1, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr v2, AsMatrix(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(int64_t rows, AsIndex(inputs[2]));
  LIMA_ASSIGN_OR_RETURN(int64_t cols, AsIndex(inputs[3]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, Table(*v1, *v2, rows, cols));
  return One(std::move(r));
}

OrderInstruction::OrderInstruction(Operand v, Operand decreasing,
                                   Operand index_return, std::string output)
    : ComputationInstruction(
          "order",
          {std::move(v), std::move(decreasing), std::move(index_return)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> OrderInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr v, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(ScalarValue dec, AsScalar(inputs[1]));
  LIMA_ASSIGN_OR_RETURN(ScalarValue idx, AsScalar(inputs[2]));
  LIMA_ASSIGN_OR_RETURN(Matrix r, Order(*v, dec.AsBool(), idx.AsBool()));
  return One(std::move(r));
}

TsmmCbindInstruction::TsmmCbindInstruction(Operand a, Operand b,
                                           std::string output)
    : ComputationInstruction("tsmm_cbind", {std::move(a), std::move(b)},
                             {std::move(output)}) {}

std::vector<LineageItemPtr> TsmmCbindInstruction::BuildLineage(
    ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  // Lineage equals the unrewritten tsmm(cbind(A, B)) trace, keeping cached
  // results interchangeable with normal execution.
  LineageItemPtr cbind_item = LineageItem::Create("cbind", input_items);
  return {LineageItem::Create("tsmm", {cbind_item})};
}

Result<std::vector<DataPtr>> TsmmCbindInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  LIMA_ASSIGN_OR_RETURN(MatrixPtr a, AsMatrix(inputs[0]));
  LIMA_ASSIGN_OR_RETURN(MatrixPtr b, AsMatrix(inputs[1]));
  if (a->rows() != b->rows()) {
    return Status::Invalid("tsmm_cbind: row mismatch");
  }

  // Upper-left block t(A)A: probe the lineage cache when available.
  MatrixPtr taa;
  ReuseCache* cache = ctx->cache();
  LineageItemPtr taa_key;
  if (cache != nullptr && ctx->lineage_active()) {
    taa_key = LineageItem::Create(
        "tsmm", {ResolveOperandLineage(ctx, operands_[0])});
    DataPtr hit = cache->Peek(taa_key);
    if (hit != nullptr && hit->type() == DataType::kMatrix) {
      taa = static_cast<const MatrixData*>(hit.get())->matrix();
    }
  }
  if (taa == nullptr) {
    Matrix computed = Tsmm(*a, /*left=*/true, ctx->parallel());
    taa = MakeMatrixPtr(std::move(computed));
    if (cache != nullptr && taa_key != nullptr && ctx->reuse_active()) {
      cache->Put(taa_key, MakeMatrixData(taa), 0.0);
    }
  }

  LIMA_ASSIGN_OR_RETURN(Matrix tab,
                        TransposeMatMul(*a, *b, ctx->parallel()));
  Matrix tbb = Tsmm(*b, /*left=*/true, ctx->parallel());

  // Assemble [[t(A)A, t(A)B], [t(B)A, t(B)B]].
  int64_t n1 = taa->cols();
  int64_t n2 = tbb.cols();
  Matrix out(n1 + n2, n1 + n2);
  for (int64_t i = 0; i < n1; ++i) {
    for (int64_t j = 0; j < n1; ++j) out.At(i, j) = taa->At(i, j);
    for (int64_t j = 0; j < n2; ++j) {
      out.At(i, n1 + j) = tab.At(i, j);
      out.At(n1 + j, i) = tab.At(i, j);
    }
  }
  for (int64_t i = 0; i < n2; ++i) {
    for (int64_t j = 0; j < n2; ++j) out.At(n1 + i, n1 + j) = tbb.At(i, j);
  }
  return One(std::move(out));
}

}  // namespace lima
