#include "runtime/program.h"

#include <algorithm>
#include <cstdio>

#include "common/parallel.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace lima {

namespace {

/// Shared dedup-aware execution of one loop-body iteration (Sec. 3.2).
/// `iter_var` is empty for while loops. On entry the iteration variable's
/// *value* must already be bound in the symbol table.
Status ExecuteIterationDedup(ExecutionContext* ctx, const void* loop_id,
                             const LoopDedupInfo& info,
                             const std::vector<BlockPtr>& body,
                             const std::string& iter_var, int64_t iter_value) {
  DedupRegistry* registry = ctx->dedup_registry();
  RuntimeStats* stats = ctx->stats();
  const int num_regular = static_cast<int>(info.body_inputs.size()) +
                          (iter_var.empty() ? 0 : 1);

  // Capture the real lineage of the loop inputs (placeholder bindings).
  std::vector<LineageItemPtr> real_inputs;
  real_inputs.reserve(num_regular);
  for (const std::string& var : info.body_inputs) {
    real_inputs.push_back(ResolveOperandLineage(ctx, Operand::Var(var)));
  }
  if (!iter_var.empty()) {
    real_inputs.push_back(ctx->lineage().GetOrCreateLiteral(
        ScalarValue::Int(iter_value).EncodeLineageLiteral()));
  }

  // Once all distinct control paths have patches, switch to lite tracing:
  // only branch bits and seeds are recorded.
  const bool lite = registry->AllPathsTraced(loop_id, info.num_branches);
  DedupTracer tracer(info.num_branches, num_regular, lite);

  // Swap in a temporary lineage map seeded with placeholders.
  LineageMap saved = std::move(ctx->lineage());
  ctx->lineage() = LineageMap();
  if (!lite) {
    for (size_t i = 0; i < info.body_inputs.size(); ++i) {
      ctx->lineage().Set(info.body_inputs[i],
                         LineageItem::CreatePlaceholder(static_cast<int>(i)));
    }
    if (!iter_var.empty()) {
      ctx->lineage().Set(iter_var, LineageItem::CreatePlaceholder(
                                       num_regular - 1));
    }
  }
  ctx->set_dedup_tracer(&tracer);
  Status status = ExecuteBlocks(body, ctx);
  ctx->set_dedup_tracer(nullptr);
  LineageMap traced = std::move(ctx->lineage());
  ctx->lineage() = std::move(saved);
  LIMA_RETURN_NOT_OK(status);

  const uint64_t path_key = tracer.PathKey();
  DedupPatchPtr patch = registry->Find(loop_id, path_key);
  if (patch == nullptr) {
    if (lite) {
      return Status::RuntimeError("dedup: missing patch in lite mode");
    }
    std::vector<std::pair<std::string, LineageItemPtr>> outputs;
    for (const std::string& var : info.body_outputs) {
      LineageItemPtr item = traced.Get(var);
      if (item != nullptr) outputs.emplace_back(var, std::move(item));
    }
    patch = BuildPatchFromTrace(registry->MakePatchName(loop_id, path_key),
                                tracer.num_placeholders(), outputs);
    patch = registry->Insert(loop_id, path_key, patch);
    if (stats != nullptr) {
      stats->dedup_patches_created.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // One dedup item per written output, all sharing the placeholder bindings
  // (inputs + iteration variable + traced seeds, Sec. 3.2).
  std::vector<LineageItemPtr> bindings = real_inputs;
  for (const std::string& seed : tracer.seeds()) {
    bindings.push_back(ctx->lineage().GetOrCreateLiteral(seed));
  }
  if (static_cast<int>(bindings.size()) != patch->num_placeholders()) {
    return Status::RuntimeError(
        "dedup: placeholder arity mismatch for patch " + patch->name());
  }
  std::vector<LineageItemPtr> dedup_items =
      LineageItem::CreateDedupAll(patch, std::move(bindings));
  for (int i = 0; i < patch->num_outputs(); ++i) {
    ctx->lineage().Set(patch->output_names()[i], std::move(dedup_items[i]));
  }
  if (stats != nullptr) {
    stats->dedup_items_created.fetch_add(patch->num_outputs(),
                                         std::memory_order_relaxed);
  }
  return Status::OK();
}

bool UseDedup(const ExecutionContext& ctx, const LoopDedupInfo& info) {
  return ctx.config().dedup_lineage && info.eligible &&
         ctx.tracing_enabled() && ctx.dedup_tracer() == nullptr &&
         ctx.dedup_registry() != nullptr;
}

}  // namespace

Status ExecuteBlocks(const std::vector<BlockPtr>& blocks,
                     ExecutionContext* ctx) {
  for (const BlockPtr& block : blocks) {
    LIMA_RETURN_NOT_OK(block->Execute(ctx));
  }
  return Status::OK();
}

Status BasicBlock::ExecuteInstructions(ExecutionContext* ctx) const {
  ProfileCollector* profiler = ctx->profiler();
  for (const std::unique_ptr<Instruction>& instruction : instructions_) {
    Status status;
    if (profiler == nullptr) {
      status = instruction->Execute(ctx);
    } else {
      // Per-opcode profiling (inclusive wall-time: a function-call
      // instruction's time contains its body). Bytes processed are the
      // sizes of the values the instruction produced.
      StopWatch watch;
      status = instruction->Execute(ctx);
      const int64_t nanos = watch.ElapsedNanos();
      int64_t bytes = 0;
      for (const std::string& var : instruction->OutputVars()) {
        DataPtr value = ctx->symbols().GetOrNull(var);
        if (value != nullptr) bytes += value->SizeInBytes();
      }
      profiler->Record(instruction->opcode_id(), nanos, bytes);
    }
    if (!status.ok()) {
      return Status(status.code(),
                    status.message() + " [in " + instruction->ToString() + "]");
    }
  }
  return Status::OK();
}

Status BasicBlock::Execute(ExecutionContext* ctx) const {
  // Block-level reuse (Sec. 4.1): probe the whole block before falling back
  // to per-operation execution. Probing uses a "block" lineage item over the
  // live-in variables' lineage, disambiguated by the block's structural
  // signature, and bundles all surviving outputs.
  const bool multilevel = reuse_info_.eligible && ctx->reuse_active() &&
                          ctx->config().reuse_mode == ReuseMode::kMultiLevel;
  if (!multilevel) return ExecuteInstructions(ctx);

  RuntimeStats* stats = ctx->stats();
  ReuseCache* cache = ctx->cache();
  std::vector<LineageItemPtr> input_items;
  input_items.reserve(reuse_info_.inputs.size());
  for (const std::string& var : reuse_info_.inputs) {
    input_items.push_back(ResolveOperandLineage(ctx, Operand::Var(var)));
  }
  char signature[32];
  std::snprintf(signature, sizeof(signature), "sig:%016llx",
                static_cast<unsigned long long>(reuse_info_.signature));
  static const OpcodeId kBlockId = InternOpcode("block");
  LineageItemPtr key =
      LineageItem::Create(kBlockId, std::move(input_items), signature);

  if (stats != nullptr) {
    stats->cache_probes.fetch_add(1, std::memory_order_relaxed);
  }
  ReuseCache::ProbeResult probe = cache->Probe(key, /*claim=*/true);
  if (probe.kind == ReuseCache::ProbeKind::kHit &&
      probe.value->type() == DataType::kList) {
    auto bundle = std::static_pointer_cast<const ListData>(probe.value);
    if (bundle->size() ==
        static_cast<int64_t>(reuse_info_.outputs.size())) {
      for (size_t i = 0; i < reuse_info_.outputs.size(); ++i) {
        ctx->SetVariable(reuse_info_.outputs[i], bundle->elements()[i],
                         bundle->element_lineage()[i]);
      }
      if (stats != nullptr) {
        stats->block_reuse_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
  }
  const bool claimed = probe.kind == ReuseCache::ProbeKind::kClaimed;

  StopWatch watch;
  Status status = ExecuteInstructions(ctx);
  if (!status.ok()) {
    if (claimed) cache->Abort(key);
    return status;
  }
  if (claimed) {
    std::vector<DataPtr> values;
    std::vector<LineageItemPtr> items;
    values.reserve(reuse_info_.outputs.size());
    for (const std::string& var : reuse_info_.outputs) {
      Result<DataPtr> value = ctx->symbols().Get(var);
      if (!value.ok()) {
        cache->Abort(key);  // conservative: do not cache partial bundles
        return Status::OK();
      }
      values.push_back(std::move(value).ValueOrDie());
      items.push_back(ctx->lineage().Get(var));
    }
    cache->Put(key,
               std::make_shared<const ListData>(std::move(values),
                                                std::move(items)),
               watch.ElapsedSeconds());
  }
  return Status::OK();
}

Result<ScalarValue> Predicate::Evaluate(ExecutionContext* ctx) const {
  LIMA_RETURN_NOT_OK(block_.Execute(ctx));
  LIMA_ASSIGN_OR_RETURN(DataPtr value, ctx->symbols().Get(result_var_));
  return AsScalar(value);
}

Status IfBlock::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(ScalarValue condition, predicate_.Evaluate(ctx));
  const bool taken = condition.AsBool();
  if (branch_id_ >= 0 && ctx->dedup_tracer() != nullptr) {
    ctx->dedup_tracer()->RecordBranch(branch_id_, taken);
  }
  return ExecuteBlocks(taken ? then_blocks_ : else_blocks_, ctx);
}

Result<std::vector<int64_t>> ForBlock::EvaluateRange(
    ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(ScalarValue from_v, from_.Evaluate(ctx));
  LIMA_ASSIGN_OR_RETURN(ScalarValue to_v, to_.Evaluate(ctx));
  int64_t from = from_v.AsInt();
  int64_t to = to_v.AsInt();
  int64_t incr = from <= to ? 1 : -1;
  if (has_incr_) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue incr_v, incr_.Evaluate(ctx));
    incr = incr_v.AsInt();
    if (incr == 0) return Status::Invalid("for: zero increment");
  }
  std::vector<int64_t> values;
  if (incr > 0) {
    for (int64_t v = from; v <= to; v += incr) values.push_back(v);
  } else {
    for (int64_t v = from; v >= to; v += incr) values.push_back(v);
  }
  return values;
}

Status ForBlock::ExecuteIteration(ExecutionContext* ctx,
                                  int64_t iter_value) const {
  ctx->symbols().Set(iter_var_, MakeIntData(iter_value));
  if (UseDedup(*ctx, dedup_info_)) {
    return ExecuteIterationDedup(ctx, this, dedup_info_, body_, iter_var_,
                                 iter_value);
  }
  if (ctx->tracing_enabled()) {
    ctx->lineage().Set(iter_var_,
                       ctx->lineage().GetOrCreateLiteral(
                           ScalarValue::Int(iter_value).EncodeLineageLiteral()));
  }
  return ExecuteBlocks(body_, ctx);
}

Status ForBlock::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(std::vector<int64_t> range, EvaluateRange(ctx));
  for (int64_t value : range) {
    LIMA_RETURN_NOT_OK(ExecuteIteration(ctx, value));
  }
  return Status::OK();
}

Status WhileBlock::ExecuteIteration(ExecutionContext* ctx) const {
  if (UseDedup(*ctx, dedup_info_)) {
    return ExecuteIterationDedup(ctx, this, dedup_info_, body_,
                                 /*iter_var=*/"", 0);
  }
  return ExecuteBlocks(body_, ctx);
}

Status WhileBlock::Execute(ExecutionContext* ctx) const {
  int64_t iterations = 0;
  while (true) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue condition, predicate_.Evaluate(ctx));
    if (!condition.AsBool()) break;
    LIMA_RETURN_NOT_OK(ExecuteIteration(ctx));
    if (max_iterations_ > 0 && ++iterations >= max_iterations_) {
      return Status::RuntimeError("while: iteration bound exceeded");
    }
  }
  return Status::OK();
}

const char* ParForSafetyName(ParForSafety verdict) {
  switch (verdict) {
    case ParForSafety::kSafe:
      return "safe";
    case ParForSafety::kSerialize:
      return "serialize";
    case ParForSafety::kReject:
      return "reject";
  }
  return "unknown";
}

std::string ParForDepInfo::ToString() const {
  std::string out;
  for (const auto& finding : findings) {
    if (!out.empty()) out += "\n";
    out += "parfor(line " + std::to_string(finding.source_line) + ") " +
           std::string(ParForSafetyName(verdict)) + ": " + finding.code +
           ": " + finding.message;
  }
  return out;
}

Status ParForBlock::Execute(ExecutionContext* ctx) const {
  LIMA_ASSIGN_OR_RETURN(std::vector<int64_t> range, EvaluateRange(ctx));
  if (range.empty()) return Status::OK();

  int workers = std::max(
      1, std::min<int>(ctx->config().parfor_workers,
                       static_cast<int>(range.size())));
  // Honor the compile-time loop-dependency verdict: unless the analysis
  // proved the iterations race-free, degrade to one worker so results and
  // lineage match the sequential loop bit for bit.
  if (dep_info_.analyzed && dep_info_.verdict != ParForSafety::kSafe &&
      workers > 1) {
    workers = 1;
    ctx->stats()->parfor_serialized.fetch_add(1, std::memory_order_relaxed);
  }
  if (workers == 1) {
    // Degenerate case: plain sequential loop semantics.
    for (int64_t value : range) {
      ctx->symbols().Set(iter_var_, MakeIntData(value));
      if (ctx->tracing_enabled()) {
        ctx->lineage().Set(
            iter_var_, ctx->lineage().GetOrCreateLiteral(
                           ScalarValue::Int(value).EncodeLineageLiteral()));
      }
      LIMA_RETURN_NOT_OK(ExecuteBlocks(body_, ctx));
    }
    return Status::OK();
  }

  // Task-parallel width comes from the shared budget: one unit per extra
  // worker beyond the calling thread. The *decomposition* stays at the
  // configured worker count so symbols, merge order and lineage are a pure
  // function of the config — a tight budget only narrows how many worker
  // chunks run concurrently, never which chunks exist.
  std::vector<ParallelBudget::Lease> worker_leases;
  ParallelBudget* budget =
      ctx->parallel() != nullptr ? ctx->parallel()->budget() : nullptr;
  if (budget != nullptr) {
    worker_leases.reserve(workers - 1);
    for (int w = 1; w < workers; ++w) {
      ParallelBudget::Lease lease = budget->AcquireWorker();
      if (lease.count() == 0) break;
      worker_leases.push_back(std::move(lease));
    }
    if (ctx->stats() != nullptr) {
      if (!worker_leases.empty()) {
        ctx->stats()->budget_grants.fetch_add(
            static_cast<int64_t>(worker_leases.size()),
            std::memory_order_relaxed);
      }
      if (static_cast<int>(worker_leases.size()) < workers - 1) {
        ctx->stats()->budget_denials.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const int width = 1 + static_cast<int>(worker_leases.size());

  // Worker-local contexts: copied symbols + lineage, full budget access.
  const SymbolTable initial = ctx->symbols();
  std::vector<ExecutionContext> worker_ctx;
  worker_ctx.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    worker_ctx.push_back(ctx->MakeWorkerContext());
  }
  std::vector<Status> worker_status(workers);

  // Worker-local profile collectors, merged at the join below: no atomics
  // or lock contention on the instruction hot path (Sec. 5.1 style
  // low-overhead statistics).
  std::vector<ProfileCollector> worker_profiles;
  if (ctx->profiler() != nullptr) {
    worker_profiles.resize(workers);
    for (int w = 0; w < workers; ++w) {
      worker_ctx[w].set_profiler(&worker_profiles[w]);
    }
  }

  const int64_t n = static_cast<int64_t>(range.size());
  const int64_t chunk = (n + workers - 1) / workers;
  // Mirror of ParallelFor's slice geometry: `width` participants each claim
  // contiguous runs of `slice_span` worker indices. When a participant
  // finishes its run it hands one leased unit back so the still-running
  // workers' kernels immediately see a larger intra-op fair share.
  const int64_t slice_span =
      (static_cast<int64_t>(workers) + width - 1) / width;
  // Tenant attribution is thread-local; carry the serving tenant (if any)
  // into the worker threads so their cache traffic is charged correctly.
  void* tenant_tag = ReuseCache::ThreadTenantTag();
  ParallelFor(workers, width, [&](int64_t w) {
    ReuseCache::ScopedTenantTag tenant_scope(tenant_tag);
    ExecutionContext* wc = &worker_ctx[w];
    const int64_t begin = w * chunk;
    const int64_t end = std::min(n, begin + chunk);
    for (int64_t k = begin; k < end; ++k) {
      wc->symbols().Set(iter_var_, MakeIntData(range[k]));
      if (wc->tracing_enabled()) {
        wc->lineage().Set(
            iter_var_, wc->lineage().GetOrCreateLiteral(
                           ScalarValue::Int(range[k]).EncodeLineageLiteral()));
      }
      Status st = ExecuteBlocks(body_, wc);
      if (!st.ok()) {
        worker_status[w] = st;
        break;
      }
    }
    bool slice_done =
        (w + 1) % slice_span == 0 || w == static_cast<int64_t>(workers) - 1;
    if (slice_done) {
      int64_t slice = w / slice_span;
      if (slice >= 1 &&
          slice - 1 < static_cast<int64_t>(worker_leases.size())) {
        worker_leases[slice - 1].Release();
      }
    }
  });
  // Join: any leases not already handed back at slice end (width < slices
  // never happens, but exceptions can skip releases) go back now, before
  // the single-threaded merge below.
  worker_leases.clear();
  // Join: fold worker profiles into the parent collector (owned by the
  // calling thread, so the merge itself is single-threaded).
  if (ctx->profiler() != nullptr) {
    for (const ProfileCollector& profile : worker_profiles) {
      ctx->profiler()->Merge(profile);
    }
  }
  for (const Status& st : worker_status) LIMA_RETURN_NOT_OK(st);

  // Result merge: variables that existed before the loop and whose value
  // changed in some worker. Matrices merge cell-wise diffs against the
  // initial value (disjoint left-indexing writes); other types — and
  // matrices the analysis marked as whole-variable overwrites — take the
  // last writer in worker order, which equals the sequential outcome
  // because workers cover ascending iteration chunks.
  const std::vector<std::string>& plain = dep_info_.plain_overwrites;
  for (const auto& [name, init_value] : initial.variables()) {
    std::vector<int> changed_workers;
    for (int w = 0; w < workers; ++w) {
      DataPtr wv = worker_ctx[w].symbols().GetOrNull(name);
      if (wv != nullptr && wv.get() != init_value.get()) {
        changed_workers.push_back(w);
      }
    }
    if (changed_workers.empty()) continue;

    std::vector<LineageItemPtr> merge_inputs;
    DataPtr merged;
    bool cellwise =
        init_value->type() == DataType::kMatrix &&
        std::find(plain.begin(), plain.end(), name) == plain.end();
    MatrixPtr init_matrix;
    if (cellwise) {
      init_matrix = static_cast<const MatrixData*>(init_value.get())->matrix();
    }
    Matrix accum(0, 0);
    bool accum_init = false;
    for (int w : changed_workers) {
      DataPtr wv = worker_ctx[w].symbols().GetOrNull(name);
      if (ctx->tracing_enabled()) {
        LineageItemPtr item = worker_ctx[w].lineage().Get(name);
        if (item != nullptr) merge_inputs.push_back(std::move(item));
      }
      if (cellwise && wv->type() == DataType::kMatrix) {
        MatrixPtr wm = static_cast<const MatrixData*>(wv.get())->matrix();
        if (wm->rows() == init_matrix->rows() &&
            wm->cols() == init_matrix->cols()) {
          if (!accum_init) {
            accum = *init_matrix;
            accum_init = true;
          }
          for (int64_t i = 0; i < accum.size(); ++i) {
            double v = wm->data()[i];
            if (v != init_matrix->data()[i]) accum.mutable_data()[i] = v;
          }
          continue;
        }
      }
      merged = wv;  // Non-cellwise: last writer wins.
      cellwise = false;
    }
    if (accum_init && cellwise) {
      merged = MakeMatrixData(std::move(accum));
    }
    LineageItemPtr merge_item;
    if (ctx->tracing_enabled() && !merge_inputs.empty()) {
      static const OpcodeId kParforMergeId = InternOpcode("parfor-merge");
      merge_item = LineageItem::Create(kParforMergeId,
                                       std::move(merge_inputs), name);
    }
    ctx->SetVariable(name, std::move(merged), std::move(merge_item));
  }
  return Status::OK();
}

void Program::AddFunction(std::unique_ptr<Function> fn) {
  functions_[fn->name()] = std::move(fn);
}

const Function* Program::GetFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.get();
}

Function* Program::GetMutableFunction(const std::string& name) {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.get();
}

Status Program::Execute(ExecutionContext* ctx) const {
  ctx->set_program(this);  // function calls resolve against this program
  return ExecuteBlocks(main_, ctx);
}

}  // namespace lima
