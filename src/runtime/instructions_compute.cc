#include "runtime/instructions_compute.h"

#include "matrix/aggregates.h"

namespace lima {

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kGt:
    case BinaryOp::kLe:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

bool IsIntPreserving(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kMin:
    case BinaryOp::kMax:
    case BinaryOp::kMod:
    case BinaryOp::kIntDiv:
      return true;
    default:
      return false;
  }
}

/// Matrix payload of a kMatrix Data without copying the MatrixPtr (a copy
/// would raise the handle's refcount and defeat the steal census below).
const Matrix& MatrixOf(const DataPtr& data) {
  return *static_cast<const MatrixData*>(data.get())->matrix();
}

/// In-place eligibility gate: the liveness mask must mark operand `index`
/// as its variable's last use, then the refcount census in TryStealBuffer
/// proves the buffer unaliased. Returns the mutable buffer or nullptr.
std::shared_ptr<Matrix> TrySteal(ExecutionContext* ctx,
                                 const std::vector<Operand>& operands,
                                 uint32_t last_use_mask,
                                 const std::vector<DataPtr>& inputs,
                                 size_t index) {
  if (index >= 32 || (last_use_mask & (uint32_t{1} << index)) == 0) {
    return nullptr;
  }
  if (operands[index].is_literal) return nullptr;
  return ctx->TryStealBuffer(operands[index].name, inputs, index);
}

}  // namespace

Result<ScalarValue> ScalarBinary(BinaryOp op, const ScalarValue& a,
                                 const ScalarValue& b) {
  if (a.is_string() || b.is_string()) {
    if (op == BinaryOp::kAdd) {
      return ScalarValue::String(a.ToDisplayString() + b.ToDisplayString());
    }
    if (a.is_string() && b.is_string()) {
      switch (op) {
        case BinaryOp::kEq:
          return ScalarValue::Bool(a.AsString() == b.AsString());
        case BinaryOp::kNeq:
          return ScalarValue::Bool(a.AsString() != b.AsString());
        case BinaryOp::kLt:
          return ScalarValue::Bool(a.AsString() < b.AsString());
        case BinaryOp::kGt:
          return ScalarValue::Bool(a.AsString() > b.AsString());
        default:
          break;
      }
    }
    return Status::TypeError(std::string("operator ") + BinaryOpName(op) +
                             " not defined on strings");
  }
  double r = ApplyBinary(op, a.AsDouble(), b.AsDouble());
  if (IsComparison(op)) return ScalarValue::Bool(r != 0.0);
  bool both_int = a.kind() == ScalarKind::kInt && b.kind() == ScalarKind::kInt;
  if (both_int && IsIntPreserving(op)) {
    return ScalarValue::Int(static_cast<int64_t>(r));
  }
  return ScalarValue::Double(r);
}

Result<ScalarValue> ScalarUnary(UnaryOp op, const ScalarValue& v) {
  if (v.is_string()) {
    return Status::TypeError(std::string("operator ") + UnaryOpName(op) +
                             " not defined on strings");
  }
  double r = ApplyUnary(op, v.AsDouble());
  if (op == UnaryOp::kNot) return ScalarValue::Bool(r != 0.0);
  if (v.kind() == ScalarKind::kInt &&
      (op == UnaryOp::kNeg || op == UnaryOp::kAbs)) {
    return ScalarValue::Int(static_cast<int64_t>(r));
  }
  return ScalarValue::Double(r);
}

BinaryInstruction::BinaryInstruction(BinaryOp op, Operand lhs, Operand rhs,
                                     std::string output)
    : ComputationInstruction(BinaryOpName(op),
                             {std::move(lhs), std::move(rhs)},
                             {std::move(output)}),
      op_(op) {}

Result<std::vector<DataPtr>> BinaryInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  const ParallelContext* par = ctx->parallel();
  const DataPtr& a = inputs[0];
  const DataPtr& b = inputs[1];
  bool a_matrix = a->type() == DataType::kMatrix;
  bool b_matrix = b->type() == DataType::kMatrix;

  if (!a_matrix && !b_matrix) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue sa, AsScalar(a));
    LIMA_ASSIGN_OR_RETURN(ScalarValue sb, AsScalar(b));
    LIMA_ASSIGN_OR_RETURN(ScalarValue r, ScalarBinary(op_, sa, sb));
    return std::vector<DataPtr>{MakeScalarData(std::move(r))};
  }
  if (a_matrix && b_matrix) {
    const Matrix& ma = MatrixOf(a);
    const Matrix& mb = MatrixOf(b);
    // In-place path: identical shapes only (a broadcast operand's buffer is
    // smaller than the output). Either operand's buffer qualifies; `mb` may
    // alias the stolen buffer (X + X) — the kernels read each cell before
    // writing its slot.
    if (ma.rows() == mb.rows() && ma.cols() == mb.cols()) {
      if (auto t = TrySteal(ctx, operands_, last_use_mask_, inputs, 0)) {
        EwiseBinaryInPlace(op_, t.get(), mb, /*target_is_left=*/true, par);
        return std::vector<DataPtr>{MakeMatrixData(MatrixPtr(std::move(t)))};
      }
      if (auto t = TrySteal(ctx, operands_, last_use_mask_, inputs, 1)) {
        EwiseBinaryInPlace(op_, t.get(), ma, /*target_is_left=*/false, par);
        return std::vector<DataPtr>{MakeMatrixData(MatrixPtr(std::move(t)))};
      }
    }
    LIMA_ASSIGN_OR_RETURN(Matrix r, EwiseBinary(op_, ma, mb, par));
    return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
  }
  if (a_matrix) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue sb, AsScalar(b));
    if (!sb.is_numeric()) {
      return Status::TypeError("matrix-string operation not supported");
    }
    if (auto t = TrySteal(ctx, operands_, last_use_mask_, inputs, 0)) {
      EwiseBinaryScalarInPlace(op_, t.get(), sb.AsDouble(),
                               /*scalar_is_left=*/false, par);
      return std::vector<DataPtr>{MakeMatrixData(MatrixPtr(std::move(t)))};
    }
    Matrix r = EwiseBinaryScalar(op_, MatrixOf(a), sb.AsDouble(),
                                 /*scalar_is_left=*/false, par);
    return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
  }
  LIMA_ASSIGN_OR_RETURN(ScalarValue sa, AsScalar(a));
  if (!sa.is_numeric()) {
    return Status::TypeError("string-matrix operation not supported");
  }
  if (auto t = TrySteal(ctx, operands_, last_use_mask_, inputs, 1)) {
    EwiseBinaryScalarInPlace(op_, t.get(), sa.AsDouble(),
                             /*scalar_is_left=*/true, par);
    return std::vector<DataPtr>{MakeMatrixData(MatrixPtr(std::move(t)))};
  }
  Matrix r = EwiseBinaryScalar(op_, MatrixOf(b), sa.AsDouble(),
                               /*scalar_is_left=*/true, par);
  return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
}

UnaryInstruction::UnaryInstruction(UnaryOp op, Operand input,
                                   std::string output)
    : ComputationInstruction(UnaryOpName(op), {std::move(input)},
                             {std::move(output)}),
      op_(op) {}

Result<std::vector<DataPtr>> UnaryInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  if (inputs[0]->type() == DataType::kScalar) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue v, AsScalar(inputs[0]));
    LIMA_ASSIGN_OR_RETURN(ScalarValue r, ScalarUnary(op_, v));
    return std::vector<DataPtr>{MakeScalarData(std::move(r))};
  }
  if (inputs[0]->type() != DataType::kMatrix) {
    return Status::TypeError("unary operator requires a scalar or matrix");
  }
  if (auto t = TrySteal(ctx, operands_, last_use_mask_, inputs, 0)) {
    EwiseUnaryInPlace(op_, t.get(), ctx->parallel());
    return std::vector<DataPtr>{MakeMatrixData(MatrixPtr(std::move(t)))};
  }
  return std::vector<DataPtr>{
      MakeMatrixData(EwiseUnary(op_, MatrixOf(inputs[0]), ctx->parallel()))};
}

AggregateInstruction::AggregateInstruction(std::string opcode, Operand input,
                                           std::string output)
    : ComputationInstruction(std::move(opcode), {std::move(input)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> AggregateInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  const ParallelContext* par = ctx->parallel();
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
  const std::string& op = opcode();
  if (op == "sum") return std::vector<DataPtr>{MakeDoubleData(Sum(*m, par))};
  if (op == "mean") return std::vector<DataPtr>{MakeDoubleData(Mean(*m, par))};
  if (op == "ua_min") {
    return std::vector<DataPtr>{MakeDoubleData(MinValue(*m, par))};
  }
  if (op == "ua_max") {
    return std::vector<DataPtr>{MakeDoubleData(MaxValue(*m, par))};
  }
  if (op == "trace") return std::vector<DataPtr>{MakeDoubleData(Trace(*m))};
  Matrix r(0, 0);
  if (op == "colSums") {
    r = ColSums(*m, par);
  } else if (op == "colMeans") {
    r = ColMeans(*m, par);
  } else if (op == "colMins") {
    r = ColMins(*m, par);
  } else if (op == "colMaxs") {
    r = ColMaxs(*m, par);
  } else if (op == "colVars") {
    r = ColVars(*m);
  } else if (op == "rowSums") {
    r = RowSums(*m, par);
  } else if (op == "rowMeans") {
    r = RowMeans(*m, par);
  } else if (op == "rowMins") {
    r = RowMins(*m, par);
  } else if (op == "rowMaxs") {
    r = RowMaxs(*m, par);
  } else if (op == "rowIndexMax") {
    r = RowIndexMax(*m, par);
  } else {
    return Status::NotImplemented("unknown aggregate: " + op);
  }
  return std::vector<DataPtr>{MakeMatrixData(std::move(r))};
}

MetadataInstruction::MetadataInstruction(std::string opcode, Operand input,
                                         std::string output)
    : ComputationInstruction(std::move(opcode), {std::move(input)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> MetadataInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  const DataPtr& in = inputs[0];
  if (in->type() == DataType::kList) {
    if (opcode() != "length") {
      return Status::TypeError(opcode() + " not defined on lists");
    }
    LIMA_ASSIGN_OR_RETURN(auto list, AsList(in));
    return std::vector<DataPtr>{MakeIntData(list->size())};
  }
  LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(in));
  int64_t v = 0;
  if (opcode() == "nrow") {
    v = m->rows();
  } else if (opcode() == "ncol") {
    v = m->cols();
  } else if (opcode() == "length") {
    v = m->size();
  } else {
    return Status::NotImplemented("unknown metadata op: " + opcode());
  }
  return std::vector<DataPtr>{MakeIntData(v)};
}

CastInstruction::CastInstruction(std::string opcode, Operand input,
                                 std::string output)
    : ComputationInstruction(std::move(opcode), {std::move(input)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> CastInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  if (opcode() == "castdts") {
    if (inputs[0]->type() == DataType::kScalar) {
      return std::vector<DataPtr>{inputs[0]};
    }
    LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
    if (m->rows() != 1 || m->cols() != 1) {
      return Status::Invalid("as.scalar: matrix is not 1x1");
    }
    return std::vector<DataPtr>{MakeDoubleData(m->At(0, 0))};
  }
  if (opcode() == "castsdm") {
    if (inputs[0]->type() == DataType::kMatrix) {
      return std::vector<DataPtr>{inputs[0]};
    }
    LIMA_ASSIGN_OR_RETURN(ScalarValue v, AsScalar(inputs[0]));
    if (!v.is_numeric()) {
      return Status::TypeError("as.matrix: string scalar");
    }
    Matrix m(1, 1, v.AsDouble());
    return std::vector<DataPtr>{MakeMatrixData(std::move(m))};
  }
  return Status::NotImplemented("unknown cast: " + opcode());
}

IfElseInstruction::IfElseInstruction(Operand condition, Operand then_value,
                                     Operand else_value, std::string output)
    : ComputationInstruction(
          "ifelse",
          {std::move(condition), std::move(then_value),
           std::move(else_value)},
          {std::move(output)}) {}

Result<std::vector<DataPtr>> IfElseInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)ctx;
  (void)state;
  // Resolve each operand into (matrix or broadcast scalar) form.
  struct Src {
    const Matrix* matrix = nullptr;
    double scalar = 0.0;
  };
  Src sources[3];
  int64_t rows = 1;
  int64_t cols = 1;
  for (int i = 0; i < 3; ++i) {
    if (inputs[i]->type() == DataType::kMatrix) {
      const Matrix* m =
          static_cast<const MatrixData*>(inputs[i].get())->matrix().get();
      sources[i].matrix = m;
      if (m->rows() != 1 || m->cols() != 1) {
        if ((rows != 1 && m->rows() != 1 && m->rows() != rows) ||
            (cols != 1 && m->cols() != 1 && m->cols() != cols)) {
          return Status::Invalid("ifelse: incompatible operand shapes");
        }
        rows = std::max(rows, m->rows());
        cols = std::max(cols, m->cols());
      }
    } else {
      LIMA_ASSIGN_OR_RETURN(double v, AsNumber(inputs[i]));
      sources[i].scalar = v;
    }
  }
  auto at = [&](const Src& src, int64_t i, int64_t j) -> double {
    if (src.matrix == nullptr) return src.scalar;
    int64_t r = src.matrix->rows() == 1 ? 0 : i;
    int64_t c = src.matrix->cols() == 1 ? 0 : j;
    return src.matrix->At(r, c);
  };
  if (rows == 1 && cols == 1 && sources[0].matrix == nullptr &&
      sources[1].matrix == nullptr && sources[2].matrix == nullptr) {
    // All-scalar form yields a scalar.
    double v = sources[0].scalar != 0.0 ? sources[1].scalar
                                        : sources[2].scalar;
    return std::vector<DataPtr>{MakeDoubleData(v)};
  }
  Matrix out(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.At(i, j) = at(sources[0], i, j) != 0.0 ? at(sources[1], i, j)
                                                 : at(sources[2], i, j);
    }
  }
  return std::vector<DataPtr>{MakeMatrixData(std::move(out))};
}

ToStringInstruction::ToStringInstruction(Operand input, std::string output)
    : ComputationInstruction("toString", {std::move(input)},
                             {std::move(output)}) {}

Result<std::vector<DataPtr>> ToStringInstruction::Compute(
    ExecutionContext* ctx, const std::vector<DataPtr>& inputs,
    const ExecState& state) const {
  (void)state;
  if (inputs[0]->type() == DataType::kScalar) {
    LIMA_ASSIGN_OR_RETURN(ScalarValue v, AsScalar(inputs[0]));
    return std::vector<DataPtr>{MakeStringData(v.ToDisplayString())};
  }
  if (inputs[0]->type() == DataType::kMatrix) {
    LIMA_ASSIGN_OR_RETURN(MatrixPtr m, AsMatrix(inputs[0]));
    return std::vector<DataPtr>{MakeStringData(m->ToString())};
  }
  return std::vector<DataPtr>{MakeStringData("<list>")};
}

}  // namespace lima
