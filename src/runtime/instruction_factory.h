#ifndef LIMA_RUNTIME_INSTRUCTION_FACTORY_H_
#define LIMA_RUNTIME_INSTRUCTION_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/opcode_registry.h"
#include "runtime/instruction.h"

namespace lima {

/// The catalog-driven instruction factory: the single place an executable
/// instruction is built from (opcode, operands, outputs). The compiler, the
/// lineage-replay path (reconstruct), and the reuse-aware rewrites all
/// construct through here, so "which opcodes exist and with what arity" has
/// exactly one source of truth — the operator catalog
/// (analysis/opcode_registry) — and replay can never drift from compilation.
///
/// Arity is validated against the catalog entry before construction;
/// unknown or uncatalogued opcodes are an error.
///
/// Two catalog opcodes are deliberately NOT constructible here:
///  - "fused": carries compiler-internal per-step state (FusedInstruction);
///    its lineage is transparent (BuildLineage materializes the unfused
///    per-step items), so no traced log ever contains a "fused" node.
///  - "eval"/"fcall"/bookkeeping/io/diagnostic ops with compiler-managed
///    state are built by the compiler directly; they are not value-producing
///    replay targets.
Result<std::unique_ptr<Instruction>> MakeInstruction(
    OpcodeId opcode, std::vector<Operand> operands,
    std::vector<std::string> outputs);

/// Convenience overload interning `opcode` first.
Result<std::unique_ptr<Instruction>> MakeInstruction(
    std::string_view opcode, std::vector<Operand> operands,
    std::vector<std::string> outputs);

/// True when the factory has a builder for `opcode`.
bool IsFactoryConstructible(OpcodeId opcode);

/// Catalog coverage check backing the verifier and the CI gate: returns one
/// message per catalog opcode that is marked `reusable` (i.e. may appear in
/// a traced lineage log and be replayed from spill/dedup state) but is not
/// constructible by the factory. Empty = no drift.
std::vector<std::string> VerifyFactoryCoverage();

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTION_FACTORY_H_
