#ifndef LIMA_RUNTIME_INSTRUCTIONS_MATRIX_H_
#define LIMA_RUNTIME_INSTRUCTIONS_MATRIX_H_

#include <string>
#include <vector>

#include "runtime/instruction.h"

namespace lima {

/// Matrix multiply A %*% B (opcode "mm").
class MatMulInstruction : public ComputationInstruction {
 public:
  MatMulInstruction(Operand a, Operand b, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Transpose-self matrix multiply: t(X) %*% X (opcode "tsmm", `left` true)
/// or X %*% t(X) (legacy SystemDS opcode "tmm", `left` false).
class TsmmInstruction : public ComputationInstruction {
 public:
  TsmmInstruction(Operand x, std::string output, bool left = true);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  bool left_;
};

/// Reorganizations: "t" (transpose), "rev" (reverse rows), "diag".
class ReorgInstruction : public ComputationInstruction {
 public:
  ReorgInstruction(std::string opcode, Operand input, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Row-major reshape: operands (X, rows, cols).
class ReshapeInstruction : public ComputationInstruction {
 public:
  ReshapeInstruction(Operand x, Operand rows, Operand cols,
                     std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Binary concatenation: opcode "cbind" or "rbind".
class AppendInstruction : public ComputationInstruction {
 public:
  AppendInstruction(bool cbind, Operand a, Operand b, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  bool cbind_;
};

/// Right indexing X[rl:ru, cl:cu]: operands (X, rl, ru, cl, cu), 1-based
/// inclusive (opcode "rightindex").
class RightIndexInstruction : public ComputationInstruction {
 public:
  RightIndexInstruction(Operand x, Operand row_lower, Operand row_upper,
                        Operand col_lower, Operand col_upper,
                        std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Left indexing out = X with X[rl:ru, cl:cu] = Y: operands
/// (X, Y, rl, ru, cl, cu) (opcode "leftindex").
class LeftIndexInstruction : public ComputationInstruction {
 public:
  LeftIndexInstruction(Operand x, Operand y, Operand row_lower,
                       Operand row_upper, Operand col_lower, Operand col_upper,
                       std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Column/row gather by an index vector: opcodes "selcols" / "selrows".
class SelectInstruction : public ComputationInstruction {
 public:
  SelectInstruction(bool columns, Operand x, Operand indices,
                    std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;

 private:
  bool columns_;
};

/// solve(A, b) (opcode "solve") and cholesky(A) (opcode "cholesky").
class SolveInstruction : public ComputationInstruction {
 public:
  SolveInstruction(Operand a, Operand b, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

class CholeskyInstruction : public ComputationInstruction {
 public:
  CholeskyInstruction(Operand a, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// [values, vectors] = eigen(A) for symmetric A (opcode "eigen";
/// two outputs).
class EigenInstruction : public ComputationInstruction {
 public:
  EigenInstruction(Operand a, std::string values_output,
                   std::string vectors_output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// table(v1, v2 [, rows, cols]) contingency matrix (opcode "table").
class TableInstruction : public ComputationInstruction {
 public:
  TableInstruction(Operand v1, Operand v2, Operand out_rows, Operand out_cols,
                   std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// order(V, decreasing, index_return) (opcode "order").
class OrderInstruction : public ComputationInstruction {
 public:
  OrderInstruction(Operand v, Operand decreasing, Operand index_return,
                   std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
};

/// Compiler-assisted fused tsmm(cbind(A, B)) (Sec. 4.4): computes the
/// block-partitioned result [[t(A)A, t(A)B], [t(B)A, t(B)B]] without
/// materializing cbind(A, B); the t(A)A block is probed from / put into the
/// lineage cache. Its lineage equals the unrewritten trace, so results stay
/// interchangeable with normal execution.
class TsmmCbindInstruction : public ComputationInstruction {
 public:
  TsmmCbindInstruction(Operand a, Operand b, std::string output);

 protected:
  Result<std::vector<DataPtr>> Compute(ExecutionContext* ctx,
                                       const std::vector<DataPtr>& inputs,
                                       const ExecState& state) const override;
  std::vector<LineageItemPtr> BuildLineage(
      ExecutionContext* ctx, const std::vector<LineageItemPtr>& input_items,
      const ExecState& state) const override;
};

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTIONS_MATRIX_H_
