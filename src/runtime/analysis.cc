#include "runtime/analysis.h"

#include <unordered_map>
#include <unordered_set>

#include <algorithm>

#include "analysis/opcode_registry.h"
#include "common/hash.h"
#include "runtime/instructions_misc.h"

namespace lima {

namespace {

// Collects reads-before-write and writes over a block sequence.
// `definitely_written` only grows through straight-line instruction writes;
// control-flow writes are treated as "maybe" (conservative inputs).
class VarCollector {
 public:
  void AddRead(const std::string& var) {
    if (definitely_written_.count(var) > 0) return;
    if (inputs_seen_.insert(var).second) inputs_.push_back(var);
  }

  void AddWrite(const std::string& var, bool definite) {
    if (outputs_seen_.insert(var).second) outputs_.push_back(var);
    if (definite) definitely_written_.insert(var);
  }

  void VisitInstruction(const Instruction& instruction, bool definite) {
    for (const std::string& var : instruction.InputVars()) AddRead(var);
    for (const std::string& var : instruction.OutputVars()) {
      AddWrite(var, definite);
    }
  }

  void VisitBasicBlock(const BasicBlock& block, bool definite) {
    for (const auto& instruction : block.instructions()) {
      VisitInstruction(*instruction, definite);
    }
  }

  void VisitBlocks(const std::vector<BlockPtr>& blocks, bool definite) {
    for (const BlockPtr& block : blocks) VisitBlock(*block, definite);
  }

  void VisitBlock(const ProgramBlock& block, bool definite) {
    switch (block.kind()) {
      case BlockKind::kBasic:
        VisitBasicBlock(static_cast<const BasicBlock&>(block), definite);
        break;
      case BlockKind::kIf: {
        const auto& if_block = static_cast<const IfBlock&>(block);
        // The predicate itself executes unconditionally.
        VisitBasicBlock(if_block.predicate().block(), definite);
        AddRead(if_block.predicate().result_var());
        // Each branch tracks its own straight-line writes (a write-then-read
        // inside one branch is not a read of the outer value), but branch
        // writes stay non-definite for the enclosing scope.
        for (const std::vector<BlockPtr>* branch :
             {&if_block.then_blocks(), &if_block.else_blocks()}) {
          VarCollector nested;
          nested.definitely_written_ = definitely_written_;
          nested.VisitBlocks(*branch, /*definite=*/true);
          for (const std::string& var : nested.inputs_) AddRead(var);
          for (const std::string& var : nested.outputs_) AddWrite(var, false);
        }
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        const auto& for_block = static_cast<const ForBlock&>(block);
        VisitBasicBlock(for_block.from().block(), definite);
        AddRead(for_block.from().result_var());
        VisitBasicBlock(for_block.to().block(), definite);
        AddRead(for_block.to().result_var());
        // Loop body: analyzed with its own definite-write tracking (a var
        // written before it is read within one iteration is not a loop
        // input); the iteration variable is defined by the loop itself.
        // Writes remain non-definite for the *enclosing* scope (the loop
        // may execute zero times).
        VarCollector body;
        body.definitely_written_.insert(for_block.iter_var());
        body.VisitBlocks(for_block.body(), /*definite=*/true);
        for (const std::string& var : body.inputs_) AddRead(var);
        for (const std::string& var : body.outputs_) AddWrite(var, false);
        break;
      }
      case BlockKind::kWhile: {
        const auto& while_block = static_cast<const WhileBlock&>(block);
        VisitBasicBlock(while_block.predicate().block(), false);
        AddRead(while_block.predicate().result_var());
        VarCollector body;
        body.VisitBlocks(while_block.body(), /*definite=*/true);
        for (const std::string& var : body.inputs_) AddRead(var);
        for (const std::string& var : body.outputs_) AddWrite(var, false);
        break;
      }
    }
  }

  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::unordered_set<std::string> inputs_seen_;
  std::unordered_set<std::string> outputs_seen_;
  std::unordered_set<std::string> definitely_written_;
};

// Dedup eligibility: last-level body (no loops, no function calls/eval),
// and a bounded number of branches.
struct EligibilityResult {
  bool eligible = true;
  int num_branches = 0;
};

void CheckEligibility(const std::vector<BlockPtr>& blocks,
                      EligibilityResult* result) {
  for (const BlockPtr& block : blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic: {
        const auto& basic = static_cast<const BasicBlock&>(*block);
        for (const auto& instruction : basic.instructions()) {
          if (IsFunctionCallOpcode(instruction->opcode())) {
            result->eligible = false;
            return;
          }
        }
        break;
      }
      case BlockKind::kIf: {
        auto& if_block = static_cast<IfBlock&>(*block);
        if_block.set_branch_id(result->num_branches++);
        CheckEligibility(if_block.then_blocks(), result);
        CheckEligibility(if_block.else_blocks(), result);
        if (!result->eligible) return;
        break;
      }
      default:
        result->eligible = false;  // Nested loop.
        return;
    }
  }
  if (result->num_branches > 20) result->eligible = false;
}

void FillLoopInfo(const std::vector<BlockPtr>& body, const Predicate* pred,
                  const std::string& iter_var, LoopDedupInfo* info) {
  EligibilityResult eligibility;
  CheckEligibility(body, &eligibility);
  info->eligible = eligibility.eligible;
  info->num_branches = eligibility.num_branches;

  VarCollector collector;
  if (pred != nullptr) {
    // While predicates read loop-carried variables: count them as inputs.
    // Predicate temporaries are definitely written before the body runs.
    collector.VisitBasicBlock(pred->block(), /*definite=*/true);
  }
  if (!iter_var.empty()) collector.definitely_written_.insert(iter_var);
  collector.VisitBlocks(body, /*definite=*/true);
  info->body_inputs = collector.inputs_;
  info->body_outputs = collector.outputs_;
}

// Fills block-level reuse metadata (Sec. 4.1 middle granularity): a block
// qualifies when it is deterministic, free of side effects and cross-block
// variable bookkeeping, and does enough work to be worth one probe.
void FillBlockReuseInfo(BasicBlock* block) {
  BasicBlock::ReuseInfo* info = block->mutable_reuse_info();
  int compute_count = 0;
  std::unordered_set<std::string> created;
  std::vector<std::string> surviving;  // first-write order
  std::unordered_set<std::string> surviving_seen;
  uint64_t signature = 0xcbf29ce484222325ULL;

  auto record_write = [&](const std::string& var) {
    created.insert(var);
    if (surviving_seen.insert(var).second) surviving.push_back(var);
  };
  auto record_remove = [&](const std::string& var) -> bool {
    if (created.count(var) == 0) return false;  // removes pre-existing state
    surviving.erase(std::remove(surviving.begin(), surviving.end(), var),
                    surviving.end());
    surviving_seen.erase(var);
    return true;
  };

  for (const auto& instruction : block->instructions()) {
    const std::string& op = instruction->opcode();
    signature = HashCombine(signature, HashBytes(instruction->ToString()));
    const OpcodeEffect* effect = LookupOpcode(op);
    if (effect == nullptr || effect->side_effects ||
        effect->category == OpcodeCategory::kCall) {
      // Side effects / nested calls (or an unregistered opcode, treated
      // conservatively): function-level reuse applies instead.
      return;
    }
    if (!instruction->IsDeterministic()) return;
    if (effect->category == OpcodeCategory::kBookkeeping) {
      if (effect->frees_inputs) {
        // mvvar/rmvar: the freed names must be block-local.
        const auto* var =
            static_cast<const VariableInstruction*>(instruction.get());
        const bool is_remove =
            var->variable_kind() == VariableInstruction::Kind::kRemove;
        for (const std::string& name :
             is_remove ? var->names() : var->InputVars()) {
          if (!record_remove(name)) return;
        }
        for (const std::string& out : var->OutputVars()) record_write(out);
      } else {
        record_write(instruction->OutputVars()[0]);
      }
      continue;
    }
    for (const std::string& out : instruction->OutputVars()) {
      record_write(out);
    }
    ++compute_count;
  }
  if (compute_count < 4 || surviving.empty()) return;

  VarCollector collector;
  collector.VisitBasicBlock(*block, /*definite=*/true);
  info->inputs = collector.inputs_;
  info->outputs = std::move(surviving);
  info->signature = signature;
  info->eligible = true;
}

void AnalyzeBlocks(std::vector<BlockPtr>* blocks);

void AnalyzeBlock(ProgramBlock* block) {
  switch (block->kind()) {
    case BlockKind::kBasic:
      FillBlockReuseInfo(static_cast<BasicBlock*>(block));
      break;
    case BlockKind::kIf: {
      auto* if_block = static_cast<IfBlock*>(block);
      AnalyzeBlocks(if_block->mutable_then_blocks());
      AnalyzeBlocks(if_block->mutable_else_blocks());
      break;
    }
    case BlockKind::kFor:
    case BlockKind::kParFor: {
      auto* for_block = static_cast<ForBlock*>(block);
      FillLoopInfo(for_block->body(), nullptr, for_block->iter_var(),
                   for_block->mutable_dedup_info());
      if (block->kind() == BlockKind::kParFor) {
        // Deduplication applies to sequential loops only.
        for_block->mutable_dedup_info()->eligible = false;
      }
      AnalyzeBlocks(for_block->mutable_body());
      break;
    }
    case BlockKind::kWhile: {
      auto* while_block = static_cast<WhileBlock*>(block);
      FillLoopInfo(while_block->body(), &while_block->predicate(), "",
                   while_block->mutable_dedup_info());
      AnalyzeBlocks(while_block->mutable_body());
      break;
    }
  }
}

void AnalyzeBlocks(std::vector<BlockPtr>* blocks) {
  for (BlockPtr& block : *blocks) AnalyzeBlock(block.get());
}

// Function determinism: scans for nondeterministic instructions and
// collects called function names.
void ScanDeterminism(const std::vector<BlockPtr>& blocks, bool* has_nondet,
                     std::unordered_set<std::string>* callees) {
  for (const BlockPtr& block : blocks) {
    switch (block->kind()) {
      case BlockKind::kBasic: {
        const auto& basic = static_cast<const BasicBlock&>(*block);
        for (const auto& instruction : basic.instructions()) {
          if (!instruction->IsDeterministic()) *has_nondet = true;
          const OpcodeEffect* effect = LookupOpcode(instruction->opcode());
          if (effect != nullptr && effect->dynamic_dispatch) {
            *has_nondet = true;  // callee unresolvable statically
          }
          if (effect != nullptr &&
              effect->category == OpcodeCategory::kCall &&
              !effect->dynamic_dispatch) {
            callees->insert(static_cast<const FunctionCallInstruction*>(
                                instruction.get())
                                ->function_name());
          }
        }
        break;
      }
      case BlockKind::kIf: {
        const auto& if_block = static_cast<const IfBlock&>(*block);
        ScanDeterminism(if_block.then_blocks(), has_nondet, callees);
        ScanDeterminism(if_block.else_blocks(), has_nondet, callees);
        break;
      }
      case BlockKind::kFor:
      case BlockKind::kParFor: {
        const auto& for_block = static_cast<const ForBlock&>(*block);
        ScanDeterminism(for_block.body(), has_nondet, callees);
        break;
      }
      case BlockKind::kWhile: {
        const auto& while_block = static_cast<const WhileBlock&>(*block);
        ScanDeterminism(while_block.body(), has_nondet, callees);
        break;
      }
    }
  }
}

}  // namespace

BodyVars AnalyzeBodyVars(const std::vector<BlockPtr>& blocks) {
  VarCollector collector;
  collector.VisitBlocks(blocks, /*definite=*/true);
  return {collector.inputs_, collector.outputs_};
}

void AnalyzeProgram(Program* program) {
  AnalyzeBlocks(program->mutable_main());
  for (const auto& [name, fn] : program->functions()) {
    AnalyzeBlocks(fn->mutable_body());
  }

  // Determinism fixpoint: optimistic start (deterministic unless a
  // nondeterministic op is present), then propagate through call edges.
  std::unordered_map<std::string, bool> deterministic;
  std::unordered_map<std::string, std::unordered_set<std::string>> calls;
  for (const auto& [name, fn] : program->functions()) {
    bool has_nondet = false;
    std::unordered_set<std::string> callees;
    ScanDeterminism(fn->body(), &has_nondet, &callees);
    deterministic[name] = !has_nondet;
    calls[name] = std::move(callees);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, det] : deterministic) {
      if (!det) continue;
      for (const std::string& callee : calls[name]) {
        auto it = deterministic.find(callee);
        if (it == deterministic.end() || !it->second) {
          det = false;
          changed = true;
          break;
        }
      }
    }
  }
  for (const auto& [name, fn] : program->functions()) {
    fn->set_deterministic(deterministic[name]);
  }
}

}  // namespace lima
