#ifndef LIMA_RUNTIME_INSTRUCTIONS_MISC_H_
#define LIMA_RUNTIME_INSTRUCTIONS_MISC_H_

#include <string>
#include <vector>

#include "runtime/instruction.h"

namespace lima {

class Function;

/// assignvar: binds a scalar literal to a variable.
class AssignLiteralInstruction : public Instruction {
 public:
  AssignLiteralInstruction(ScalarValue value, std::string output)
      : Instruction("assignvar"),
        value_(std::move(value)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override { return {}; }
  std::vector<std::string> OutputVars() const override { return {output_}; }
  std::string ToString() const override;

  const ScalarValue& value() const { return value_; }

 private:
  ScalarValue value_;
  std::string output_;
};

/// Variable bookkeeping: cpvar (copy), mvvar (rename), rmvar (remove,
/// possibly several). These only manipulate the symbol table and the
/// lineage map (Sec. 3.1).
class VariableInstruction : public Instruction {
 public:
  enum class Kind { kCopy, kMove, kRemove };

  static std::unique_ptr<VariableInstruction> Copy(std::string from,
                                                   std::string to);
  static std::unique_ptr<VariableInstruction> Move(std::string from,
                                                   std::string to);
  static std::unique_ptr<VariableInstruction> Remove(
      std::vector<std::string> names);

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override;
  std::string ToString() const override;

  Kind variable_kind() const { return kind_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  VariableInstruction(Kind kind, std::vector<std::string> names);

  Kind kind_;
  std::vector<std::string> names_;
};

/// print(expr): writes the rendered value plus newline to the context's
/// print stream.
class PrintInstruction : public Instruction {
 public:
  explicit PrintInstruction(Operand input)
      : Instruction("print"), input_(std::move(input)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {}; }

 private:
  Operand input_;
};

/// stop(msg): aborts script execution with a RuntimeError.
class StopInstruction : public Instruction {
 public:
  explicit StopInstruction(Operand message)
      : Instruction("stop"), message_(std::move(message)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {}; }

 private:
  Operand message_;
};

/// list(e1, ..., en): bundles values, preserving each element's lineage so
/// later list indexing restores fine-grained lineage.
class ListInstruction : public Instruction {
 public:
  ListInstruction(std::vector<Operand> elements, std::string output)
      : Instruction("list"),
        elements_(std::move(elements)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {output_}; }

 private:
  std::vector<Operand> elements_;
  std::string output_;
};

/// l[i]: extracts element i (1-based) of a list with its original lineage.
class ListIndexInstruction : public Instruction {
 public:
  ListIndexInstruction(Operand list, Operand index, std::string output)
      : Instruction("listidx"),
        list_(std::move(list)),
        index_(std::move(index)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {output_}; }

 private:
  Operand list_;
  Operand index_;
  std::string output_;
};

/// Invokes a user-defined function with positional arguments. Implements
/// multi-level (function-level) reuse for deterministic functions
/// (Sec. 4.1): a special "fcall" lineage item over the argument lineages
/// keys a bundle of all outputs in the cache.
class FunctionCallInstruction : public Instruction {
 public:
  FunctionCallInstruction(std::string function_name, std::vector<Operand> args,
                          std::vector<std::string> output_vars)
      : Instruction("fcall"),
        function_name_(std::move(function_name)),
        args_(std::move(args)),
        output_vars_(std::move(output_vars)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return output_vars_; }
  std::string ToString() const override;

  const std::string& function_name() const { return function_name_; }
  const std::vector<Operand>& args() const { return args_; }

 private:
  std::string function_name_;
  std::vector<Operand> args_;
  std::vector<std::string> output_vars_;
};

/// eval(fname, list(args...)): dynamic function dispatch by name, as used by
/// the paper's generic gridSearch builtin (Example 1). Single output.
class EvalInstruction : public Instruction {
 public:
  EvalInstruction(Operand function_name, Operand args_list, std::string output)
      : Instruction("eval"),
        function_name_(std::move(function_name)),
        args_list_(std::move(args_list)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {output_}; }

 private:
  Operand function_name_;
  Operand args_list_;
  std::string output_;
};

/// write(X, "path"): persists a matrix in the LIMA binary format (or CSV
/// when the path ends in .csv) and — when tracing is active — also writes
/// the lineage log to "<path>.lineage" (Sec. 3.1).
class WriteInstruction : public Instruction {
 public:
  WriteInstruction(Operand input, Operand path)
      : Instruction("write"),
        input_(std::move(input)),
        path_(std::move(path)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {}; }

 private:
  Operand input_;
  Operand path_;
};

/// read("path"): loads a matrix written by write(). Files are assumed
/// immutable (Sec. 3.4), so the lineage is a "read" leaf identified by the
/// path — repeated reads of one file share lineage and reuse.
class ReadInstruction : public Instruction {
 public:
  ReadInstruction(Operand path, std::string output)
      : Instruction("readfile"),
        path_(std::move(path)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {output_}; }

  const Operand& path() const { return path_; }

 private:
  Operand path_;
  std::string output_;
};

/// lineage(X): serializes the lineage DAG of a variable into a string
/// scalar (Sec. 3.1, the user-facing lineage builtin). Yields an error
/// string when tracing is disabled.
class LineageOfInstruction : public Instruction {
 public:
  LineageOfInstruction(Operand input, std::string output)
      : Instruction("lineageof"),
        input_(std::move(input)),
        output_(std::move(output)) {}

  Status Execute(ExecutionContext* ctx) const override;
  std::vector<std::string> InputVars() const override;
  std::vector<std::string> OutputVars() const override { return {output_}; }

 private:
  Operand input_;
  std::string output_;
};

/// Shared function-invocation path (fcall + eval): binds arguments in a
/// fresh child context, applies function-level reuse when enabled, executes
/// the body, and copies outputs (values + lineage) back to the caller.
Status CallFunction(ExecutionContext* ctx, const Function& fn,
                    const std::vector<DataPtr>& arg_values,
                    const std::vector<LineageItemPtr>& arg_items,
                    const std::vector<std::string>& output_vars);

}  // namespace lima

#endif  // LIMA_RUNTIME_INSTRUCTIONS_MISC_H_
