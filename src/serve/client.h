#ifndef LIMA_SERVE_CLIENT_H_
#define LIMA_SERVE_CLIENT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "serve/protocol.h"

namespace lima {
namespace serve {

/// One-call client for lima_serve: connect, send a request frame, read the
/// response frame, close. The server serves one request per connection, so
/// there is nothing to pool.
Result<Message> Call(const std::string& socket_path, const Message& request);

/// Convenience wrapper for the "run" op. A non-"ok" response status (error
/// or overloaded) is surfaced as a failed Status carrying the server's
/// error text; the full response (output + per-request counters) is
/// returned on success.
Result<Message> RunScript(const std::string& socket_path,
                          const std::string& tenant,
                          const std::string& script);

}  // namespace serve
}  // namespace lima

#endif  // LIMA_SERVE_CLIENT_H_
