#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "algorithms/scripts.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "lang/session.h"
#include "persist/query.h"

namespace lima {
namespace serve {

namespace {

constexpr int64_t kMaxBudgetMb =
    std::numeric_limits<int64_t>::max() / (1024 * 1024);

/// Splits a config line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

Result<ServeOptions> LoadServeOptionsFile(const std::string& path,
                                          ServeOptions base) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open serve config: " + path);
  }
  // Budgets are replaced wholesale, not merged: a reload that removes a
  // tenant_budget_mb line lifts that tenant's budget.
  base.tenant_budgets.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    auto fail = [&](const std::string& why) {
      return Status::Invalid(path + ":" + std::to_string(lineno) + ": " + why);
    };
    if (key == "pool_size" && tokens.size() == 2) {
      LIMA_ASSIGN_OR_RETURN(base.pool_size,
                            ParseIntStrict(tokens[1], 1, 4096, "pool_size"));
    } else if (key == "queue_capacity" && tokens.size() == 2) {
      LIMA_ASSIGN_OR_RETURN(
          base.queue_capacity,
          ParseIntStrict(tokens[1], 1, 1 << 20, "queue_capacity"));
    } else if (key == "max_parallelism" && tokens.size() == 2) {
      LIMA_ASSIGN_OR_RETURN(
          base.session_config.max_parallelism,
          ParseIntStrict(tokens[1], 0, 4096, "max_parallelism"));
    } else if (key == "budget_mb" && tokens.size() == 2) {
      LIMA_ASSIGN_OR_RETURN(
          int64_t mb, ParseInt64Strict(tokens[1], 0, kMaxBudgetMb, "budget_mb"));
      base.session_config.cache_budget_bytes = mb * 1024 * 1024;
    } else if (key == "tenant_budget_mb" && tokens.size() == 3) {
      LIMA_ASSIGN_OR_RETURN(
          int64_t mb,
          ParseInt64Strict(tokens[2], 0, kMaxBudgetMb, "tenant_budget_mb"));
      base.tenant_budgets.emplace_back(tokens[1], mb * 1024 * 1024);
    } else if (key == "store_dir" && tokens.size() == 2) {
      base.store_dir = tokens[1];
    } else if (key == "snapshot_every" && tokens.size() == 2) {
      LIMA_ASSIGN_OR_RETURN(
          base.snapshot_every,
          ParseIntStrict(tokens[1], 0, 1 << 20, "snapshot_every"));
    } else {
      return fail("unknown or malformed directive: " + key);
    }
  }
  return base;
}

LimaServer::LimaServer(ServeOptions options) : options_(std::move(options)) {
  queue_capacity_.store(options_.queue_capacity, std::memory_order_relaxed);
  desired_pool_size_.store(options_.pool_size, std::memory_order_relaxed);
}

LimaServer::~LimaServer() { Stop(); }

Status LimaServer::Start() {
  if (started_.exchange(true)) {
    return Status::RuntimeError("server already started");
  }
  if (options_.socket_path.empty()) {
    return Status::Invalid("serve: socket_path is required");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid("serve: socket path too long: " +
                           options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("serve: socket() failed: ") +
                           std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError("serve: bind(" + options_.socket_path +
                                    ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Status::IoError(std::string("serve: listen() failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  if (!options_.store_dir.empty()) {
    // The shared cache spills into the store dir so snapshot value files
    // and spill files live (and relocate) together.
    options_.session_config.store_dir = options_.store_dir;
  }
  if (options_.shared_cache) {
    shared_cache_ = LimaSession::MakeSharedCache(options_.session_config);
    if (!options_.store_dir.empty()) {
      // Warm start: rebuild the cache from the newest snapshot. A corrupt,
      // truncated, or version-skewed snapshot degrades to a cold start with
      // a diagnostic — never a crash (tests/warm_start_test.cc).
      warm_start_ = persist::LoadCacheSnapshot(shared_cache_.get(),
                                               options_.store_dir);
    }
  }
  ApplyTenantBudgets(options_.tenant_budgets);
  // One budget governs every request's kernels and parfor workers; serve
  // admission (WorkerLoop) blocks on it, so concurrent requests plus their
  // intra-op threads can never exceed the configured parallelism.
  ParallelBudget::Global().set_capacity(
      ResolveMaxParallelism(options_.session_config.max_parallelism));

  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (int i = 0; i < options_.pool_size; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LimaServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  // First caller wins: the destructor calls Stop() too, and a second pass
  // must not write a second shutdown snapshot.
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // shutdown() forces a blocked accept() to return; close alone does not
    // on all kernels.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  // Snapshot after the drain so the persisted cache reflects every served
  // request. SIGKILL skips this — that is what the periodic snapshots and
  // the crash-recovery path in LoadCacheSnapshot are for.
  SaveSnapshot();
}

void LimaServer::SaveSnapshot() {
  if (options_.store_dir.empty() || shared_cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Result<persist::SnapshotStats> stats =
      persist::SaveCacheSnapshot(shared_cache_.get(), options_.store_dir);
  if (stats.ok()) {
    snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::fprintf(stderr, "lima_serve: snapshot failed: %s\n",
                 stats.status().ToString().c_str());
  }
}

void LimaServer::MaybeSnapshot() {
  const int every = options_.snapshot_every;
  if (every <= 0 || options_.store_dir.empty() || shared_cache_ == nullptr) {
    return;
  }
  if (completed_.load(std::memory_order_relaxed) % every == 0) {
    SaveSnapshot();
  }
}

void LimaServer::Reload(const ServeOptions& options) {
  queue_capacity_.store(options.queue_capacity, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(tenant_caches_mu_);
    options_.tenant_budgets = options.tenant_budgets;
  }
  ApplyTenantBudgets(options.tenant_budgets);

  ParallelBudget::Global().set_capacity(
      ResolveMaxParallelism(options.session_config.max_parallelism));
  const int desired = options.pool_size < 1 ? 1 : options.pool_size;
  desired_pool_size_.store(desired, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    // Grow by spawning workers with fresh ids; shrink happens on the worker
    // side (ids >= desired exit after their current request). Exited
    // threads stay joinable in workers_ until Stop().
    for (int i = static_cast<int>(workers_.size()); i < desired; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
  queue_cv_.notify_all();
}

LimaServer::Counters LimaServer::counters() const {
  Counters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  return c;
}

void LimaServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or unrecoverable
    }
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    if (depth >= static_cast<size_t>(
                     queue_capacity_.load(std::memory_order_relaxed))) {
      // Shed without processing the request: answer first (the tiny
      // response fits in the send buffer), then signal EOF and drain
      // whatever the client sent. Closing with unread data still in the
      // receive buffer would emit RST instead of FIN, which can destroy
      // the in-flight response before the client reads it.
      Message response;
      response.Set("status", "overloaded");
      response.Set("error", "server overloaded, retry later");
      (void)WriteMessage(fd, response);
      ::shutdown(fd, SHUT_WR);
      // Bounded drain: a well-behaved client closes right after reading
      // the response (recv returns 0); the timeout and byte cap keep a
      // dead or hostile peer from wedging the accept loop.
      struct timeval drain_timeout;
      drain_timeout.tv_sec = 2;
      drain_timeout.tv_usec = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &drain_timeout,
                   sizeof(drain_timeout));
      char sink[4096];
      size_t drained = 0;
      while (drained < 2 * static_cast<size_t>(kMaxFrameBytes)) {
        ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
        if (n > 0) {
          drained += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF, timeout, or error: nothing left worth waiting for
      }
      ::close(fd);
      shed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(fd);
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
  }
}

void LimaServer::WorkerLoop(int worker_id) {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this, worker_id] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire) ||
               worker_id >= desired_pool_size_.load(std::memory_order_relaxed);
      });
      if (worker_id >= desired_pool_size_.load(std::memory_order_relaxed) &&
          !stopping_.load(std::memory_order_acquire)) {
        return;  // pool shrunk below this id; remaining workers own the queue
      }
      if (queue_.empty()) {
        // stopping_ with an empty queue: graceful drain complete.
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    {
      // Admission against the shared parallelism budget: block until a unit
      // frees up, so pool_size concurrent requests cannot oversubscribe the
      // kernels' budget. The session's own RegisterThread call inside
      // ServeConnection sees this thread already registered and no-ops.
      ParallelBudget::Lease slot =
          ParallelBudget::Global().RegisterThread(/*wait=*/true);
      ServeConnection(fd);
    }
  }
}

void LimaServer::ServeConnection(int fd) {
  Result<Message> request = ReadMessage(fd);
  if (!request.ok()) {
    // Malformed or hung-up client: answer if the socket still works, but
    // never let one bad connection take the worker down.
    Message response;
    response.Set("status", "error");
    response.Set("error", request.status().ToString());
    (void)WriteMessage(fd, response);
    ::close(fd);
    failed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Message response = HandleRequest(*request);
  (void)WriteMessage(fd, response);
  ::close(fd);
  if (response.Get("status") == "ok") {
    completed_.fetch_add(1, std::memory_order_relaxed);
    // Only runs mutate the cache; ping/stats/query must not burn snapshot
    // generations.
    if (request->Get("op") == "run") MaybeSnapshot();
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
}

Message LimaServer::HandleRequest(const Message& request) {
  const std::string op = request.Get("op");
  if (op == "run") return HandleRun(request);
  if (op == "stats") return HandleStats();
  if (op == "query") return HandleQuery(request);
  if (op == "ping") {
    Message response;
    response.Set("status", "ok");
    return response;
  }
  Message response;
  response.Set("status", "error");
  response.Set("error", "unknown op: " + (op.empty() ? "<missing>" : op));
  return response;
}

Message LimaServer::HandleRun(const Message& request) {
  Message response;
  const std::string* script = request.Find("script");
  if (script == nullptr) {
    response.Set("status", "error");
    response.Set("error", "run: missing script field");
    return response;
  }
  std::string tenant = request.Get("tenant", "default");
  if (tenant.empty()) tenant = "default";

  LimaConfig config = options_.session_config;
  if (const std::string* workers = request.Find("workers")) {
    Result<int> parsed = ParseIntStrict(*workers, 1, 4096, "workers");
    if (!parsed.ok()) {
      response.Set("status", "error");
      response.Set("error", parsed.status().ToString());
      return response;
    }
    config.parfor_workers = *parsed;
  }

  std::shared_ptr<LineageCache> cache = CacheForTenant(tenant);
  LimaSession session(config, cache);
  StopWatch watch;
  Status status;
  {
    // All cache traffic of this request — including parfor workers, which
    // inherit the tag — is charged to the tenant.
    LineageCache::TenantScope scope(cache.get(), tenant);
    status = session.Run(scripts::Builtins() + *script);
  }
  const double seconds = watch.ElapsedSeconds();

  if (!status.ok()) {
    response.Set("status", "error");
    response.Set("error", status.ToString());
  } else {
    response.Set("status", "ok");
    response.Set("output", session.ConsumeOutput());
    if (request.Get("persist") == "1" && !options_.store_dir.empty()) {
      Result<int64_t> persisted = session.PersistLineage(options_.store_dir);
      response.Set("persisted_records",
                   persisted.ok() ? std::to_string(*persisted) : "0");
      if (!persisted.ok()) {
        response.Set("persist_error", persisted.status().ToString());
      }
    }
  }
  response.Set("tenant", tenant);
  response.Set("elapsed_us",
               std::to_string(static_cast<int64_t>(seconds * 1e6)));
  const RuntimeStats* stats = session.stats();
  response.Set("cache_probes", std::to_string(stats->cache_probes.load()));
  response.Set("cache_hits", std::to_string(stats->cache_hits.load()));
  response.Set("cache_misses", std::to_string(stats->cache_misses.load()));
  response.Set("function_reuse_hits",
               std::to_string(stats->function_reuse_hits.load()));
  return response;
}

Message LimaServer::HandleQuery(const Message& request) {
  Message response;
  const std::string* query = request.Find("q");
  if (query == nullptr) {
    response.Set("status", "error");
    response.Set("error", "query: missing q field");
    return response;
  }
  if (options_.store_dir.empty()) {
    response.Set("status", "error");
    response.Set("error", "query: server has no store_dir configured");
    return response;
  }
  Result<std::string> answer =
      persist::RunLineageQuery(options_.store_dir, *query);
  if (!answer.ok()) {
    response.Set("status", "error");
    response.Set("error", answer.status().ToString());
    return response;
  }
  response.Set("status", "ok");
  response.Set("output", *answer);
  return response;
}

Message LimaServer::HandleStats() {
  Message response;
  response.Set("status", "ok");
  const Counters c = counters();
  response.Set("accepted", std::to_string(c.accepted));
  response.Set("shed", std::to_string(c.shed));
  response.Set("completed", std::to_string(c.completed));
  response.Set("failed", std::to_string(c.failed));
  if (!options_.store_dir.empty()) {
    response.Set("warm_start", warm_start_.warm ? "1" : "0");
    response.Set("warm_entries", std::to_string(warm_start_.entries));
    if (!warm_start_.diagnostic.empty()) {
      response.Set("warm_diagnostic", warm_start_.diagnostic);
    }
    response.Set("snapshots_taken", std::to_string(snapshots_taken()));
  }
  ParallelBudget& budget = ParallelBudget::Global();
  response.Set("parallel_capacity", std::to_string(budget.capacity()));
  response.Set("parallel_in_use", std::to_string(budget.in_use()));
  response.Set("parallel_peak_in_use", std::to_string(budget.peak_in_use()));
  response.Set("parallel_lease_waits", std::to_string(budget.lease_waits()));

  std::vector<std::shared_ptr<LineageCache>> caches;
  if (shared_cache_ != nullptr) {
    caches.push_back(shared_cache_);
  } else {
    std::lock_guard<std::mutex> lock(tenant_caches_mu_);
    for (const auto& [tenant, cache] : tenant_caches_) {
      (void)tenant;  // snapshot rows carry the tenant name themselves
      caches.push_back(cache);
    }
  }
  for (const std::shared_ptr<LineageCache>& cache : caches) {
    for (const CacheTenantStats& t : cache->TenantStatsSnapshot()) {
      const std::string prefix = "tenant." + t.tenant + ".";
      response.Set(prefix + "budget_bytes", std::to_string(t.budget_bytes));
      response.Set(prefix + "resident_bytes",
                   std::to_string(t.resident_bytes));
      response.Set(prefix + "entries", std::to_string(t.entries));
      response.Set(prefix + "probes", std::to_string(t.probes));
      response.Set(prefix + "hits", std::to_string(t.hits));
      response.Set(prefix + "misses", std::to_string(t.misses));
      response.Set(prefix + "cross_tenant_hits",
                   std::to_string(t.cross_tenant_hits));
      response.Set(prefix + "puts", std::to_string(t.puts));
      response.Set(prefix + "evictions", std::to_string(t.evictions));
    }
  }
  return response;
}

std::shared_ptr<LineageCache> LimaServer::CacheForTenant(
    const std::string& tenant) {
  if (shared_cache_ != nullptr) return shared_cache_;
  std::lock_guard<std::mutex> lock(tenant_caches_mu_);
  std::shared_ptr<LineageCache>& cache = tenant_caches_[tenant];
  if (cache == nullptr) {
    cache = LimaSession::MakeSharedCache(options_.session_config);
    for (const auto& [name, budget] : options_.tenant_budgets) {
      if (name == tenant) cache->SetTenantBudget(tenant, budget);
    }
  }
  return cache;
}

void LimaServer::ApplyTenantBudgets(
    const std::vector<std::pair<std::string, int64_t>>& budgets) {
  if (shared_cache_ != nullptr) {
    for (const auto& [tenant, budget] : budgets) {
      shared_cache_->SetTenantBudget(tenant, budget);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(tenant_caches_mu_);
  for (const auto& [tenant, budget] : budgets) {
    auto it = tenant_caches_.find(tenant);
    if (it != tenant_caches_.end()) {
      it->second->SetTenantBudget(tenant, budget);
    }
  }
}

}  // namespace serve
}  // namespace lima
