#ifndef LIMA_SERVE_PROTOCOL_H_
#define LIMA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lima {
namespace serve {

/// Wire format of lima_serve (docs/SERVING.md): every request and response
/// is one frame — a 4-byte little-endian u32 payload length followed by the
/// payload. The payload is an ordered list of key/value string fields:
///
///   u32 field_count, then per field: u32 key_len, key bytes,
///                                    u32 value_len, value bytes
///
/// Requests carry at least "op" ("run" | "stats" | "ping"); "run" adds
/// "tenant" and "script". Responses carry "status" ("ok" | "error" |
/// "overloaded") plus op-specific fields ("output", per-request counters).
/// The format is deliberately dumb: no varints, no nesting, strict decode —
/// a malformed or oversized frame fails the connection, never the server.

/// Hard ceiling on one frame's payload; larger lengths are treated as a
/// protocol error (a desynced or hostile peer, not a big script).
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// An ordered key/value field list. Keys may repeat; Find returns the first
/// occurrence. Field order is preserved on the wire, so encode(decode(x))
/// is byte-identical.
struct Message {
  std::vector<std::pair<std::string, std::string>> fields;

  void Set(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
  /// First value for `key`, or nullptr.
  const std::string* Find(std::string_view key) const;
  /// First value for `key`, or `fallback`.
  std::string Get(std::string_view key, std::string fallback = "") const;
};

/// Serializes the field list (payload only, no length prefix).
std::string EncodeMessage(const Message& message);

/// Strictly parses a payload produced by EncodeMessage: any truncation,
/// trailing bytes, or length overflow is an error.
Result<Message> DecodeMessage(std::string_view payload);

/// Writes one length-prefixed frame to `fd`, handling short writes and
/// EINTR. Fails if the payload exceeds kMaxFrameBytes.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one length-prefixed frame from `fd`. EOF before the first length
/// byte yields StatusCode::kIoError with message "connection closed" (the
/// normal end of a client connection); any other truncation is an error.
Result<std::string> ReadFrame(int fd);

/// Convenience: encode + write / read + decode.
Status WriteMessage(int fd, const Message& message);
Result<Message> ReadMessage(int fd);

}  // namespace serve
}  // namespace lima

#endif  // LIMA_SERVE_PROTOCOL_H_
