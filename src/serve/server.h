#ifndef LIMA_SERVE_SERVER_H_
#define LIMA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "persist/snapshot.h"
#include "reuse/lineage_cache.h"
#include "serve/protocol.h"

namespace lima {
namespace serve {

/// Configuration of one lima_serve daemon (docs/SERVING.md). Reloadable
/// fields (SIGHUP): pool_size, queue_capacity, tenant_budgets. The socket
/// path, session template, and cache mode are fixed at Start().
struct ServeOptions {
  /// Filesystem path of the Unix-domain listening socket.
  std::string socket_path;

  /// Number of worker threads executing requests. Reload can grow and
  /// shrink this; shrink takes effect as workers finish their current
  /// request.
  int pool_size = 2;

  /// Admission control: maximum accepted-but-unserved connections. The
  /// accept loop sheds beyond this by answering status="overloaded"
  /// immediately, so a saturated server stays responsive instead of
  /// building an unbounded backlog.
  int queue_capacity = 16;

  /// Session template for request execution (reuse mode, policy, cache
  /// budget, shards, ...). Defaults to LimaConfig::Serving().
  LimaConfig session_config = LimaConfig::Serving();

  /// True (default): all tenants share one sharded lineage cache, so tenant
  /// B reuses results tenant A computed (cross-tenant hits). False: one
  /// private cache per tenant — the isolation baseline bench_serve compares
  /// against.
  bool shared_cache = true;

  /// Per-tenant cache byte budgets (LineageCache::SetTenantBudget); tenants
  /// not listed are unlimited (bounded only by the cache-wide budget).
  std::vector<std::pair<std::string, int64_t>> tenant_budgets;

  /// Persistent lineage store directory (docs/PERSISTENCE.md). When set and
  /// shared_cache is on, Start() warm-starts the cache from the newest
  /// snapshot (corrupt or version-skewed snapshots degrade to a cold start),
  /// Stop() writes a fresh snapshot, and the "query" op serves in-situ
  /// lineage queries against the store. Fixed at Start().
  std::string store_dir;

  /// Write a cache snapshot after every N completed requests (0 = only at
  /// Stop()). Bounds data loss on SIGKILL to the last N requests.
  int snapshot_every = 0;
};

/// Parses a lima_serve config file into `base` (missing keys keep their
/// values). Line format, '#' comments allowed:
///
///   pool_size 4
///   queue_capacity 32
///   budget_mb 512
///   tenant_budget_mb alice 64
///
/// Used both at startup (--config=) and on SIGHUP reload.
Result<ServeOptions> LoadServeOptionsFile(const std::string& path,
                                          ServeOptions base);

/// Multi-tenant DML execution daemon: accepts framed requests (protocol.h)
/// over a Unix-domain socket and executes each "run" op on a fresh
/// LimaSession attached to the shared lineage cache, inside a
/// LineageCache::TenantScope so the cache charges bytes and hits to the
/// requesting tenant. One request per connection (connect → request →
/// response → close), which keeps admission control trivial: a connection
/// IS a queue slot.
class LimaServer {
 public:
  explicit LimaServer(ServeOptions options);
  ~LimaServer();

  LimaServer(const LimaServer&) = delete;
  LimaServer& operator=(const LimaServer&) = delete;

  /// Binds the socket (unlinking a stale file), starts the accept loop and
  /// the worker pool.
  Status Start();

  /// Graceful shutdown: stop accepting, serve every already-admitted
  /// request, join all threads, unlink the socket. Idempotent.
  void Stop();

  /// Applies reloadable fields from `options`: tenant budgets (takes effect
  /// immediately, evicting down if needed), queue capacity, pool size
  /// (grows by spawning, shrinks as workers finish requests).
  void Reload(const ServeOptions& options);

  /// Admission/served counters (relaxed reads; for stats + tests).
  struct Counters {
    int64_t accepted = 0;   ///< connections admitted to the queue
    int64_t shed = 0;       ///< connections answered "overloaded"
    int64_t completed = 0;  ///< requests answered "ok"
    int64_t failed = 0;     ///< requests answered "error"
  };
  Counters counters() const;

  const std::string& socket_path() const { return options_.socket_path; }

  /// The shared cache (null when shared_cache=false). Exposed for tests
  /// and the stats op.
  const std::shared_ptr<LineageCache>& shared_cache() const {
    return shared_cache_;
  }

  /// Warm-start outcome of Start() (attempted=false when no store_dir or
  /// private caches). Exposed for tests and the stats op.
  const persist::WarmStartReport& warm_start_report() const {
    return warm_start_;
  }

  /// Snapshots written so far (Stop() + periodic). Relaxed read.
  int64_t snapshots_taken() const {
    return snapshots_taken_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop(int worker_id);
  /// Serves one connection end to end; owns (and closes) `fd`.
  void ServeConnection(int fd);
  Message HandleRequest(const Message& request);
  Message HandleRun(const Message& request);
  Message HandleStats();
  Message HandleQuery(const Message& request);
  /// Writes a cache snapshot into store_dir (no-op without one). Serialized
  /// by snapshot_mu_ so a periodic snapshot and Stop() never interleave.
  void SaveSnapshot();
  /// Periodic-snapshot hook: called after each completed request.
  void MaybeSnapshot();
  /// Cache for `tenant`: the shared cache, or (private mode) the tenant's
  /// own cache, created on first use.
  std::shared_ptr<LineageCache> CacheForTenant(const std::string& tenant);
  void ApplyTenantBudgets(
      const std::vector<std::pair<std::string, int64_t>>& budgets);

  ServeOptions options_;
  std::shared_ptr<LineageCache> shared_cache_;

  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  /// Set by the first Stop() caller; later calls return immediately.
  std::atomic<bool> stopped_{false};

  /// Admitted connections waiting for a worker. Guarded by queue_mu_.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  std::atomic<int> queue_capacity_{0};
  /// Workers exit when their id >= desired_pool_size_ (reload shrink).
  std::atomic<int> desired_pool_size_{0};

  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;

  /// Private-mode per-tenant caches; guarded by tenant_caches_mu_.
  std::mutex tenant_caches_mu_;
  std::unordered_map<std::string, std::shared_ptr<LineageCache>>
      tenant_caches_;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};

  /// Persistence state (set at Start when options_.store_dir is non-empty).
  persist::WarmStartReport warm_start_;
  std::mutex snapshot_mu_;
  std::atomic<int64_t> snapshots_taken_{0};
};

}  // namespace serve
}  // namespace lima

#endif  // LIMA_SERVE_SERVER_H_
