#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lima {
namespace serve {

Result<Message> Call(const std::string& socket_path, const Message& request) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid("serve: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("serve: socket() failed: ") +
                           std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = Status::IoError("serve: connect(" + socket_path +
                                    ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }

  Status write_status = WriteMessage(fd, request);
  if (!write_status.ok()) {
    ::close(fd);
    return write_status;
  }
  Result<Message> response = ReadMessage(fd);
  ::close(fd);
  return response;
}

Result<Message> RunScript(const std::string& socket_path,
                          const std::string& tenant,
                          const std::string& script) {
  Message request;
  request.Set("op", "run");
  request.Set("tenant", tenant);
  request.Set("script", script);
  LIMA_ASSIGN_OR_RETURN(Message response, Call(socket_path, request));
  const std::string status = response.Get("status");
  if (status != "ok") {
    return Status::RuntimeError(
        "serve: " + (status.empty() ? "malformed response" : status) + ": " +
        response.Get("error", "<no error text>"));
  }
  return response;
}

}  // namespace serve
}  // namespace lima
