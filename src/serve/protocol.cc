#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lima {
namespace serve {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  // Little-endian, byte by byte: independent of host endianness.
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Reads a u32 at `pos`, advancing it; fails on truncation.
Result<uint32_t> TakeU32(std::string_view payload, size_t* pos) {
  if (payload.size() - *pos < 4) {
    return Status::IoError("protocol: truncated frame (u32 expected)");
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data()) + *pos;
  *pos += 4;
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Result<std::string_view> TakeBytes(std::string_view payload, size_t* pos,
                                   uint32_t len) {
  if (payload.size() - *pos < len) {
    return Status::IoError("protocol: truncated frame (field data)");
  }
  std::string_view out = payload.substr(*pos, len);
  *pos += len;
  return out;
}

/// Full read of `len` bytes; EOF mid-read is an error, EOF at the first
/// byte is reported via *eof_at_start (clean connection close).
Status ReadExact(int fd, char* buf, size_t len, bool* eof_at_start) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, buf + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("protocol: read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::OK();
      }
      return Status::IoError("protocol: truncated frame (unexpected EOF)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteExact(int fd, const char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill the
    // daemon with SIGPIPE (all protocol fds are sockets).
    ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("protocol: write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

const std::string* Message::Find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Message::Get(std::string_view key, std::string fallback) const {
  const std::string* value = Find(key);
  return value != nullptr ? *value : std::move(fallback);
}

std::string EncodeMessage(const Message& message) {
  std::string out;
  size_t size = 4;
  for (const auto& [k, v] : message.fields) size += 8 + k.size() + v.size();
  out.reserve(size);
  AppendU32(&out, static_cast<uint32_t>(message.fields.size()));
  for (const auto& [k, v] : message.fields) {
    AppendU32(&out, static_cast<uint32_t>(k.size()));
    out.append(k);
    AppendU32(&out, static_cast<uint32_t>(v.size()));
    out.append(v);
  }
  return out;
}

Result<Message> DecodeMessage(std::string_view payload) {
  size_t pos = 0;
  LIMA_ASSIGN_OR_RETURN(uint32_t count, TakeU32(payload, &pos));
  // Each field needs >= 8 bytes of length prefixes; rejects absurd counts
  // before the loop allocates anything.
  if (count > payload.size() / 8) {
    return Status::IoError("protocol: field count exceeds frame size");
  }
  Message message;
  message.fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LIMA_ASSIGN_OR_RETURN(uint32_t klen, TakeU32(payload, &pos));
    LIMA_ASSIGN_OR_RETURN(std::string_view key, TakeBytes(payload, &pos, klen));
    LIMA_ASSIGN_OR_RETURN(uint32_t vlen, TakeU32(payload, &pos));
    LIMA_ASSIGN_OR_RETURN(std::string_view value,
                          TakeBytes(payload, &pos, vlen));
    message.fields.emplace_back(std::string(key), std::string(value));
  }
  if (pos != payload.size()) {
    return Status::IoError("protocol: trailing bytes after last field");
  }
  return message;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::IoError("protocol: frame exceeds 16MB limit");
  }
  std::string header;
  AppendU32(&header, static_cast<uint32_t>(payload.size()));
  LIMA_RETURN_NOT_OK(WriteExact(fd, header.data(), header.size()));
  return WriteExact(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  bool eof = false;
  LIMA_RETURN_NOT_OK(ReadExact(fd, header, sizeof(header), &eof));
  if (eof) return Status::IoError("connection closed");
  size_t pos = 0;
  LIMA_ASSIGN_OR_RETURN(
      uint32_t len, TakeU32(std::string_view(header, sizeof(header)), &pos));
  if (len > kMaxFrameBytes) {
    return Status::IoError("protocol: frame exceeds 16MB limit");
  }
  std::string payload(len, '\0');
  LIMA_RETURN_NOT_OK(ReadExact(fd, payload.data(), len, nullptr));
  return payload;
}

Status WriteMessage(int fd, const Message& message) {
  return WriteFrame(fd, EncodeMessage(message));
}

Result<Message> ReadMessage(int fd) {
  LIMA_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd));
  return DecodeMessage(payload);
}

}  // namespace serve
}  // namespace lima
