#include "algorithms/scripts.h"

namespace lima {
namespace scripts {

const char* const kPreprocess = R"DML(
scaleAndShift = function(Matrix X) return (Matrix Y) {
  mu = colMeans(X);
  sd = sqrt(colVars(X)) + 1e-12;
  Y = (X - mu) / sd;
}
l2norm = function(Matrix X, Matrix y, Matrix B) return (Double loss) {
  r = X %*% B - y;
  loss = sum(r ^ 2);
}
)DML";

const char* const kLm = R"DML(
lmLoss = function(Matrix X, Matrix y, Matrix B, Double icpt = 0) return (Double loss) {
  if (icpt == 2) { X = scaleAndShift(X); }
  if (icpt > 0) { X = cbind(X, matrix(1, nrow(X), 1)); }
  r = X %*% B - y;
  loss = sum(r ^ 2);
}
lmDS = function(Matrix X, Matrix y, Double icpt = 0, Double reg = 1e-7) return (Matrix B) {
  if (icpt == 2) { X = scaleAndShift(X); }
  if (icpt > 0) { X = cbind(X, matrix(1, nrow(X), 1)); }
  A = t(X) %*% X + diag(matrix(reg, ncol(X), 1));
  b = t(X) %*% y;
  B = solve(A, b);
}
lmCG = function(Matrix X, Matrix y, Double icpt = 0, Double reg = 1e-7,
                Double tol = 1e-7, Double maxi = 0) return (Matrix B) {
  if (icpt == 2) { X = scaleAndShift(X); }
  if (icpt > 0) { X = cbind(X, matrix(1, nrow(X), 1)); }
  d = ncol(X);
  B = matrix(0, d, 1);
  r = 0 - t(X) %*% y;
  p = 0 - r;
  norm_r2 = sum(r ^ 2);
  norm_r2_tgt = norm_r2 * tol ^ 2;
  maxiter = maxi;
  if (maxiter == 0) { maxiter = d; }
  i = 0;
  while (i < maxiter & norm_r2 > norm_r2_tgt) {
    q = t(X) %*% (X %*% p) + reg * p;
    alpha = norm_r2 / sum(p * q);
    B = B + alpha * p;
    r = r + alpha * q;
    old_norm_r2 = norm_r2;
    norm_r2 = sum(r ^ 2);
    p = 0 - r + (norm_r2 / old_norm_r2) * p;
    i = i + 1;
  }
}
lm = function(Matrix X, Matrix y, Double icpt = 0, Double reg = 1e-7,
              Double tol = 1e-7, Double maxi = 0) return (Matrix B) {
  if (ncol(X) <= 1024) {
    B = lmDS(X, y, icpt, reg);
  } else {
    B = lmCG(X, y, icpt, reg, tol, maxi);
  }
}
)DML";

const char* const kL2svm = R"DML(
l2svm = function(Matrix X, Matrix Y, Double icpt = 0, Double reg = 1,
                 Double tol = 0.001, Double maxiter = 20) return (Matrix w) {
  if (icpt == 1) { X = cbind(X, matrix(1, nrow(X), 1)); }
  d = ncol(X);
  w = matrix(0, d, 1);
  g_old = t(X) %*% Y;
  s = g_old;
  Xw = matrix(0, nrow(X), 1);
  iter = 0;
  continue = 1;
  while (continue == 1 & iter < maxiter) {
    step_sz = 0;
    Xd = X %*% s;
    wd = reg * sum(w * s);
    dd = reg * sum(s * s);
    inner = 0;
    continue1 = 1;
    while (continue1 == 1 & inner < 20) {
      tmp_Xw = Xw + step_sz * Xd;
      out = 1 - Y * tmp_Xw;
      sv = (out > 0);
      out = out * sv;
      g = wd + step_sz * dd - sum(out * Y * Xd);
      h = dd + sum(Xd * sv * Xd);
      step_sz = step_sz - g / h;
      if (g * g / h < tol / 100) { continue1 = 0; }
      inner = inner + 1;
    }
    w = w + step_sz * s;
    Xw = Xw + step_sz * Xd;
    out = 1 - Y * Xw;
    sv = (out > 0);
    out = sv * out;
    obj = 0.5 * sum(out * out) + reg / 2 * sum(w * w);
    g_new = t(X) %*% (out * Y) - reg * w;
    if (step_sz * sum(s * g_old) < tol * obj) { continue = 0; }
    be = sum(g_new * g_new) / sum(g_old * g_old);
    g_old = g_new;
    s = be * s + g_new;
    iter = iter + 1;
  }
}
)DML";

const char* const kMsvm = R"DML(
msvm = function(Matrix X, Matrix Y, Double nclass, Double reg = 1,
                Double tol = 0.001, Double maxiter = 20) return (Matrix W) {
  W = matrix(0, ncol(X), nclass);
  parfor (c in 1:nclass) {
    yc = 2 * (Y == c) - 1;
    w = l2svm(X, yc, 0, reg, tol, maxiter);
    W[, c] = w;
  }
}
msvmPredict = function(Matrix X, Matrix W) return (Matrix pred) {
  S = X %*% W;
  pred = rowIndexMax(S);
}
)DML";

const char* const kMLogReg = R"DML(
mlogreg = function(Matrix X, Matrix Y, Double nclass, Double reg = 0,
                   Double maxiter = 20, Double step = 0.1) return (Matrix W) {
  n = nrow(X);
  Yoh = table(seq(1, n, 1), Y, n, nclass);
  W = matrix(0, ncol(X), nclass);
  i = 0;
  while (i < maxiter) {
    S = X %*% W;
    S = S - rowMaxs(S);
    E = exp(S);
    P = E / rowSums(E);
    G = t(X) %*% (P - Yoh) / n + reg * W;
    W = W - step * G;
    i = i + 1;
  }
}
mlogregPredict = function(Matrix X, Matrix W) return (Matrix P) {
  S = X %*% W;
  S = S - rowMaxs(S);
  E = exp(S);
  P = E / rowSums(E);
}
)DML";

const char* const kPca = R"DML(
pca = function(Matrix A, Double K) return (Matrix R, Matrix evects_k) {
  N = nrow(A);
  D = ncol(A);
  mu = colMeans(A);
  C = (t(A) %*% A) / (N - 1) - (N / (N - 1)) * t(mu) %*% mu;
  [evals, evects] = eigen(C);
  dscIdx = order(target=evals, decreasing=TRUE, index.return=TRUE);
  diagMat = table(seq(1, D, 1), dscIdx, D, D);
  evects = evects %*% diagMat;
  evects_k = evects[, 1:K];
  R = A %*% evects_k;
}
)DML";

const char* const kNaiveBayes = R"DML(
naiveBayes = function(Matrix X, Matrix Y, Double nclass, Double laplace = 1)
    return (Matrix prior, Matrix condp) {
  n = nrow(X);
  Yoh = table(seq(1, n, 1), Y, n, nclass);
  classCounts = colSums(Yoh);
  prior = t(classCounts) / n;
  featureSums = t(Yoh) %*% X;
  condp = (featureSums + laplace) / (rowSums(featureSums) + laplace * ncol(X));
}
naiveBayesPredict = function(Matrix X, Matrix prior, Matrix condp)
    return (Matrix pred) {
  logp = X %*% t(log(condp)) + t(log(prior));
  pred = rowIndexMax(logp);
}
)DML";

const char* const kGridSearchLm = R"DML(
gridSearchLm = function(Matrix X, Matrix y, Matrix regs, Matrix icpts,
                        Matrix tols) return (Matrix losses) {
  na = nrow(regs);
  nb = nrow(icpts);
  nc = nrow(tols);
  losses = matrix(0, na * nb * nc, 1);
  for (a in 1:na) {
    for (b in 1:nb) {
      for (c in 1:nc) {
        icpt = as.scalar(icpts[b, 1]);
        B = lm(X, y, icpt, as.scalar(regs[a, 1]), as.scalar(tols[c, 1]), 0);
        l = lmLoss(X, y, B, icpt);
        losses[(a - 1) * nb * nc + (b - 1) * nc + c, 1] = l;
      }
    }
  }
}
gridSearchLmPar = function(Matrix X, Matrix y, Matrix regs, Matrix icpts,
                           Matrix tols) return (Matrix losses) {
  na = nrow(regs);
  nb = nrow(icpts);
  nc = nrow(tols);
  losses = matrix(0, na * nb * nc, 1);
  parfor (a in 1:na) {
    for (b in 1:nb) {
      for (c in 1:nc) {
        icpt = as.scalar(icpts[b, 1]);
        B = lm(X, y, icpt, as.scalar(regs[a, 1]), as.scalar(tols[c, 1]), 0);
        l = lmLoss(X, y, B, icpt);
        losses[(a - 1) * nb * nc + (b - 1) * nc + c, 1] = l;
      }
    }
  }
}
)DML";

const char* const kCvLm = R"DML(
cvLm = function(Matrix X, Matrix y, Double k, Double reg = 1e-3,
                Double icpt = 0) return (Double avgLoss) {
  n = nrow(X);
  fs = floor(n / k);
  acc = 0;
  for (i in 1:k) {
    lo = (i - 1) * fs + 1;
    hi = i * fs;
    if (i == k) { hi = n; }
    Xte = X[lo:hi, ];
    yte = y[lo:hi, ];
    # Training set: left-deep rbind chain over the remaining folds, so fold
    # slices, prefix rbinds, and per-fold tsmm results are reusable.
    started = 0;
    Xtr = X;
    ytr = y;
    for (j in 1:k) {
      if (j != i) {
        jlo = (j - 1) * fs + 1;
        jhi = j * fs;
        if (j == k) { jhi = n; }
        if (started == 0) {
          Xtr = X[jlo:jhi, ];
          ytr = y[jlo:jhi, ];
          started = 1;
        } else {
          Xtr = rbind(Xtr, X[jlo:jhi, ]);
          ytr = rbind(ytr, y[jlo:jhi, ]);
        }
      }
    }
    B = lmDS(Xtr, ytr, icpt, reg);
    acc = acc + lmLoss(Xte, yte, B, icpt);
  }
  avgLoss = acc / k;
}
cvLmPar = function(Matrix X, Matrix y, Double k, Double reg = 1e-3,
                   Double icpt = 0) return (Matrix losses) {
  n = nrow(X);
  fs = floor(n / k);
  losses = matrix(0, k, 1);
  parfor (i in 1:k) {
    lo = (i - 1) * fs + 1;
    hi = i * fs;
    if (i == k) { hi = n; }
    Xte = X[lo:hi, ];
    yte = y[lo:hi, ];
    started = 0;
    Xtr = X;
    ytr = y;
    for (j in 1:k) {
      if (j != i) {
        jlo = (j - 1) * fs + 1;
        jhi = j * fs;
        if (j == k) { jhi = n; }
        if (started == 0) {
          Xtr = X[jlo:jhi, ];
          ytr = y[jlo:jhi, ];
          started = 1;
        } else {
          Xtr = rbind(Xtr, X[jlo:jhi, ]);
          ytr = rbind(ytr, y[jlo:jhi, ]);
        }
      }
    }
    B = lmDS(Xtr, ytr, icpt, reg);
    losses[i, 1] = lmLoss(Xte, yte, B, icpt);
  }
}
)DML";

const char* const kStepLm = R"DML(
stepLm = function(Matrix X, Matrix y, Double maxK, Double reg = 0.001)
    return (Matrix sel, Double bestLoss) {
  d = ncol(X);
  sel = matrix(0, 1, maxK);
  bestLoss = 1e300;
  bestJ = 1;
  for (j in 1:d) {
    xj = X[, j];
    A = t(xj) %*% xj + reg;
    b = t(xj) %*% y;
    beta = b / A;
    r = xj %*% beta - y;
    l = sum(r ^ 2);
    if (l < bestLoss) { bestLoss = l; bestJ = j; }
  }
  sel[1, 1] = bestJ;
  Xs = X[, bestJ];
  k = 2;
  while (k <= maxK) {
    bestLoss = 1e300;
    bestJ = 1;
    for (j in 1:d) {
      Z = cbind(Xs, X[, j]);
      A = t(Z) %*% Z + diag(matrix(reg, ncol(Z), 1));
      b = t(Z) %*% y;
      beta = solve(A, b);
      r = Z %*% beta - y;
      l = sum(r ^ 2);
      if (l < bestLoss) { bestLoss = l; bestJ = j; }
    }
    sel[1, k] = bestJ;
    Xs = cbind(Xs, X[, bestJ]);
    k = k + 1;
  }
}
)DML";

const char* const kAutoencoder = R"DML(
autoencoder = function(Matrix X, Double h1, Double h2, Double epochs,
                       Double batch, Double lr = 0.01) return (Double finalLoss) {
  n = nrow(X);
  d = ncol(X);
  W1 = rand(rows=d, cols=h1, min=-0.1, max=0.1, seed=1);
  W2 = rand(rows=h1, cols=h2, min=-0.1, max=0.1, seed=2);
  W3 = rand(rows=h2, cols=h1, min=-0.1, max=0.1, seed=3);
  W4 = rand(rows=h1, cols=d, min=-0.1, max=0.1, seed=4);
  nb = floor(n / batch);
  finalLoss = 0;
  for (e in 1:epochs) {
    for (b in 1:nb) {
      lo = (b - 1) * batch + 1;
      hi = b * batch;
      Xb = X[lo:hi, ];
      # Batch-wise feature preprocessing: reusable across epochs.
      Xb = (Xb - colMeans(Xb)) / (sqrt(colVars(Xb)) + 0.001);
      H1 = sigmoid(Xb %*% W1);
      H2 = sigmoid(H1 %*% W2);
      H3 = sigmoid(H2 %*% W3);
      O = H3 %*% W4;
      E = O - Xb;
      dW4 = t(H3) %*% E;
      dH3 = E %*% t(W4) * H3 * (1 - H3);
      dW3 = t(H2) %*% dH3;
      dH2 = dH3 %*% t(W3) * H2 * (1 - H2);
      dW2 = t(H1) %*% dH2;
      dH1 = dH2 %*% t(W2) * H1 * (1 - H1);
      dW1 = t(Xb) %*% dH1;
      W1 = W1 - lr * dW1;
      W2 = W2 - lr * dW2;
      W3 = W3 - lr * dW3;
      W4 = W4 - lr * dW4;
      finalLoss = sum(E * E);
    }
  }
}
)DML";

const char* const kKmeans = R"DML(
kmeans = function(Matrix X, Double k, Double maxiter = 10, Double seed = -1)
    return (Matrix C, Matrix assign, Double wsse) {
  n = nrow(X);
  idx = sample(n, k, seed);
  C = matrix(0, k, ncol(X));
  for (i in 1:k) {
    C[i, ] = X[as.scalar(idx[i, 1]), ];
  }
  assign = matrix(1, n, 1);
  iter = 0;
  while (iter < maxiter) {
    D = rowSums(X ^ 2) - 2 * (X %*% t(C)) + t(rowSums(C ^ 2));
    assign = rowIndexMax(0 - D);
    A = table(seq(1, n, 1), assign, n, k);
    counts = t(colSums(A));
    C = (t(A) %*% X) / max(counts, 1);
    iter = iter + 1;
  }
  D = rowSums(X ^ 2) - 2 * (X %*% t(C)) + t(rowSums(C ^ 2));
  wsse = sum(0 - rowMaxs(0 - D));
}
kmeansPredict = function(Matrix X, Matrix C) return (Matrix assign) {
  D = rowSums(X ^ 2) - 2 * (X %*% t(C)) + t(rowSums(C ^ 2));
  assign = rowIndexMax(0 - D);
}
)DML";

const char* const kPageRank = R"DML(
pageRank = function(Matrix G, Matrix p0, Matrix e, Matrix u, Double alpha = 0.85,
                    Double maxiter = 20) return (Matrix p) {
  p = p0;
  i = 0;
  while (i < maxiter) {
    p = alpha * (G %*% p) + (1 - alpha) * (e %*% u %*% p);
    i = i + 1;
  }
}
)DML";

std::string Builtins() {
  std::string all;
  all += kPreprocess;
  all += kLm;
  all += kL2svm;
  all += kMsvm;
  all += kMLogReg;
  all += kPca;
  all += kNaiveBayes;
  all += kGridSearchLm;
  all += kCvLm;
  all += kStepLm;
  all += kAutoencoder;
  all += kKmeans;
  all += kPageRank;
  return all;
}

}  // namespace scripts
}  // namespace lima
