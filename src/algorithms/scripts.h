#ifndef LIMA_ALGORITHMS_SCRIPTS_H_
#define LIMA_ALGORITHMS_SCRIPTS_H_

#include <string>

namespace lima {
namespace scripts {

/// Script-based ML builtins, written in the DML-subset language — the
/// analogue of SystemDS's script-level builtin functions that the paper's
/// pipelines orchestrate (Sec. 2.1). Prepend the needed snippets (or
/// `Builtins()`) to a user script before LimaSession::Run.

/// scaleAndShift (mu=0, sd=1) and loss helpers.
extern const char* const kPreprocess;

/// lm / lmDS (closed-form) / lmCG (conjugate gradient) / lmLoss, with the
/// ncol(X)-based dispatch of Example 1.
extern const char* const kLm;

/// Binary L2-regularized linear SVM (labels -1/+1).
extern const char* const kL2svm;

/// One-vs-all multiclass SVM on top of l2svm (task-parallel over classes).
extern const char* const kMsvm;

/// Multinomial logistic regression via softmax gradient descent.
extern const char* const kMLogReg;

/// PCA (covariance + eigen + order/table projection, Fig. 5).
extern const char* const kPca;

/// Multinomial naive Bayes with Laplace smoothing (+ predict).
extern const char* const kNaiveBayes;

/// Grid search for lm hyper-parameters (sequential and parfor variants).
extern const char* const kGridSearchLm;

/// k-fold leave-one-out cross-validated lm (left-deep rbind fold chains).
extern const char* const kCvLm;

/// Forward feature selection (stepLm) — the partial-reuse showcase.
extern const char* const kStepLm;

/// Mini-batch autoencoder with two hidden layers and batch-wise
/// normalization (Fig. 10(a)).
extern const char* const kAutoencoder;

/// k-means clustering with randomly sampled initial centroids — the class
/// of nondeterministic, randomly initialized algorithms whose seeds LIMA
/// exposes through lineage (Sec. 1, "Problem of Non-Determinism").
extern const char* const kKmeans;

/// PageRank iteration (the Fig. 4 dedup example).
extern const char* const kPageRank;

/// All builtins concatenated; prepend to any pipeline script.
std::string Builtins();

}  // namespace scripts
}  // namespace lima

#endif  // LIMA_ALGORITHMS_SCRIPTS_H_
