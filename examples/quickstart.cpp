// Quickstart: run a small ML script with fine-grained lineage tracing and
// reuse, inspect the lineage of a result, and see the reuse statistics.
//
//   ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "algorithms/scripts.h"
#include "lang/session.h"

int main() {
  using namespace lima;

  // A session with the paper's default configuration: lineage tracing,
  // hybrid (full + partial) reuse, Cost&Size eviction.
  LimaSession session(LimaConfig::Lima());

  // External inputs get "read" lineage leaves.
  Matrix x(6, 2, {1, 1, 2, 1, 3, 2, 4, 3, 5, 5, 6, 8});
  session.BindMatrix("X", std::move(x));

  Status status = session.Run(scripts::Builtins() + R"(
    y = X %*% matrix(1, 2, 1) + 0.5;
    # Train the same model for three regularization values: the invariant
    # t(X)%*%X and t(X)%*%y are computed once and reused.
    for (i in 1:3) {
      B = lmDS(X, y, 0, i * 0.0001);
      print("loss(reg=" + (i * 0.0001) + ") = " + lmLoss(X, y, B, 0));
    }
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::cout << session.ConsumeOutput();
  std::cout << "\nLineage of B (exact recipe of the intermediate):\n"
            << *session.GetLineage("B");
  std::cout << "\nReuse statistics: " << session.stats()->ToString() << "\n";
  return 0;
}
