// The Fig. 4 example: lineage deduplication for PageRank. Runs the iterative
// PageRank script with plain tracing and with loop deduplication, prints the
// lineage sizes (full DAG vs. one dedup item per iteration + one patch), and
// the deduplicated lineage log.
//
//   ./examples/pagerank_lineage [iterations]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "algorithms/scripts.h"
#include "lang/session.h"
#include "lineage/serialize.h"

int main(int argc, char** argv) {
  using namespace lima;
  int iterations = argc > 1 ? std::atoi(argv[1]) : 3;

  const std::string script = R"(
    n = 50;
    G = rand(rows=n, cols=n, min=0, max=1, sparsity=0.1, seed=7);
    G = G / max(colSums(G), 1e-12);
    p = matrix(1 / n, n, 1);
    e = matrix(1, n, 1);
    u = matrix(1 / n, 1, n);
    for (i in 1:)" + std::to_string(iterations) + R"() {
      t1 = G %*% p;
      t2 = e %*% (u %*% p);
      p = 0.85 * t1 + 0.15 * t2;
    }
  )";

  for (bool dedup : {false, true}) {
    LimaConfig config = LimaConfig::TracingOnly();
    config.dedup_lineage = dedup;
    LimaSession session(config);
    Status status = session.Run(script);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    LineageItemPtr p = session.GetLineageItem("p");
    std::printf("%s lineage of p: %lld items (%lld expanded), %lld bytes\n",
                dedup ? "Deduplicated" : "Plain       ",
                static_cast<long long>(p->NodeCount()),
                static_cast<long long>(p->NodeCount(/*resolve_dedup=*/true)),
                static_cast<long long>(p->SizeInBytes()));
    if (dedup) {
      std::cout << "\nDeduplicated lineage log (one patch, one dedup item "
                   "per iteration):\n"
                << SerializeLineage(p);
    }
  }
  return 0;
}
