// Notebook-style cross-script reuse (Sec. 4.5: the cache is "designed for
// process-wide sharing, which also applies to collaborative notebook
// environments"): a LimaSession persists variables AND the lineage cache
// across Run() calls, so re-executed or incrementally edited "cells" reuse
// everything that did not change.
//
//   ./examples/notebook_reuse
#include <cstdio>

#include "algorithms/scripts.h"
#include "common/timer.h"
#include "lang/session.h"

int main() {
  using namespace lima;
  LimaSession session(LimaConfig::LimaMultiLevel());

  auto run_cell = [&](const char* name, const std::string& cell) {
    StopWatch watch;
    Status status = session.Run(scripts::Builtins() + cell);
    if (!status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   status.ToString().c_str());
      std::exit(1);
    }
    std::printf("%-28s %7.1f ms   %s\n", name,
                watch.ElapsedSeconds() * 1e3,
                session.stats()->ToString().c_str());
    session.stats()->Reset();
  };

  // Cell 1: load data (seeded, so its lineage is stable across cells).
  run_cell("cell 1: data", R"(
    X = rand(rows=20000, cols=50, min=-1, max=1, seed=1);
    y = X %*% rand(rows=50, cols=1, seed=2);
  )");

  // Cell 2: train a first model.
  run_cell("cell 2: lm(reg=1e-4)", R"(
    B = lmDS(X, y, 0, 1e-4);
    print("loss: " + lmLoss(X, y, B, 0));
  )");

  // Cell 3: the user tweaks the regularizer and re-runs — t(X)X and t(X)y
  // come from the cache, only the solve re-executes.
  run_cell("cell 3: lm(reg=1e-2)", R"(
    B = lmDS(X, y, 0, 1e-2);
    print("loss: " + lmLoss(X, y, B, 0));
  )");

  // Cell 4: re-running an identical cell is answered at function level.
  run_cell("cell 4: rerun cell 3", R"(
    B = lmDS(X, y, 0, 1e-2);
    print("loss: " + lmLoss(X, y, B, 0));
  )");

  // Cell 5: a different downstream analysis still reuses the gram matrix.
  run_cell("cell 5: pca", R"(
    [R, V] = pca(X, 5);
    print("projected variance: " + sum(colVars(R)));
  )");

  std::printf("%s", session.ConsumeOutput().c_str());
  return 0;
}
