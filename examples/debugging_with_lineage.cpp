// The Example 3 workflow: multi-person debugging with lineage. A "production
// run" produces a result whose lineage log is exchanged (serialized /
// deserialized), compared against a second environment's lineage, and used
// to reconstruct a program that recomputes the exact intermediate — catching
// a mis-passed default parameter that is invisible at pipeline level.
//
//   ./examples/debugging_with_lineage
#include <cstdio>
#include <iostream>

#include "algorithms/scripts.h"
#include "lang/session.h"
#include "lineage/serialize.h"
#include "runtime/reconstruct.h"

int main() {
  using namespace lima;

  // Development setup: lm trained with reg = 0.001.
  LimaSession dev(LimaConfig::TracingOnly());
  dev.BindMatrix("X", Matrix(4, 2, {1, 2, 2, 1, 3, 3, 4, 5}));
  dev.BindMatrix("y", Matrix(4, 1, {5, 4, 9, 14}));
  Status status = dev.Run(scripts::Builtins() + "B = lmDS(X, y, 0, 0.001);");
  if (!status.ok()) {
    std::fprintf(stderr, "dev error: %s\n", status.ToString().c_str());
    return 1;
  }

  // "Production" setup: the deployment infrastructure dropped the reg
  // argument, silently falling back to the default (the paper's bug).
  LimaSession prod(LimaConfig::TracingOnly());
  prod.BindMatrix("X", Matrix(4, 2, {1, 2, 2, 1, 3, 3, 4, 5}));
  prod.BindMatrix("y", Matrix(4, 1, {5, 4, 9, 14}));
  status = prod.Run(scripts::Builtins() + "B = lmDS(X, y);");
  if (!status.ok()) {
    std::fprintf(stderr, "prod error: %s\n", status.ToString().c_str());
    return 1;
  }

  // Exchange lineage logs instead of nights of debugging: serialize the dev
  // trace, ship it, deserialize it next to the production trace, compare.
  std::string dev_log = *dev.GetLineage("B");
  Result<LineageItemPtr> shipped = DeserializeLineage(dev_log);
  LineageItemPtr prod_item = prod.GetLineageItem("B");
  bool equal = LineageEquals(*shipped, prod_item);
  std::printf("lineage(dev B) == lineage(prod B): %s\n",
              equal ? "true" : "false  <-- environments diverge!");

  // The logs pinpoint the difference: the reg literal feeding diag().
  std::cout << "\ndev lineage:\n" << dev_log;
  std::cout << "\nprod lineage:\n" << *prod.GetLineage("B");

  // Reproduce the dev result exactly from its lineage: reconstruct a
  // straight-line program (no control flow) and run it on the same inputs.
  Result<ReconstructedProgram> rec = ReconstructProgram(prod_item);
  if (!rec.ok()) {
    std::fprintf(stderr, "reconstruct error: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }
  LimaSession replay(LimaConfig::Base());
  replay.BindMatrix("X", Matrix(4, 2, {1, 2, 2, 1, 3, 3, 4, 5}));
  replay.BindMatrix("y", Matrix(4, 1, {5, 4, 9, 14}));
  status = rec->program->Execute(replay.context());
  if (!status.ok()) {
    std::fprintf(stderr, "replay error: %s\n", status.ToString().c_str());
    return 1;
  }
  MatrixPtr original = *prod.GetMatrix("B");
  MatrixPtr replayed = *replay.GetMatrix(rec->output_var);
  std::printf("\nreconstructed result equals original: %s\n",
              replayed->EqualsApprox(*original, 1e-12) ? "true" : "false");
  return 0;
}
