// The paper's running example (Example 1): random feature subsets, each
// tuned with grid-search linear regression. Runs the identical script under
// Base (no lineage) and LIMA (fine-grained reuse) and reports the speedup —
// the redundancy sources of Example 2 (irrelevant tol values under lmDS,
// reg-invariant t(X)X / t(X)y, shared cbind(X,1), overlapping feature sets)
// are eliminated by the lineage cache.
//
//   ./examples/gridsearch_lm [rows] [cols]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algorithms/scripts.h"
#include "common/timer.h"
#include "lang/session.h"

int main(int argc, char** argv) {
  using namespace lima;
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;
  int64_t cols = argc > 2 ? std::atoll(argv[2]) : 40;

  const std::string script = scripts::Builtins() + R"(
    X = rand(rows=)" + std::to_string(rows) + R"(, cols=)" +
      std::to_string(cols) + R"(, min=-1, max=1, seed=1);
    y = X %*% rand(rows=)" + std::to_string(cols) + R"(, cols=1, seed=2);
    regs = 10 ^ (0 - seq(1, 6, 1));
    icpts = seq(0, 2, 1);
    tols = 10 ^ (0 - 7 - seq(1, 5, 1));
    for (i in 1:4) {
      s = sample(ncol(X), 15, i);   # random feature subsets (overlapping)
      losses = gridSearchLm(X[, s], y, regs, icpts, tols);
      print("feature set " + i + ": best loss = " + min(losses));
    }
  )";

  double base_seconds = 0;
  for (bool lima : {false, true}) {
    LimaSession session(lima ? LimaConfig::Lima() : LimaConfig::Base());
    StopWatch watch;
    Status status = session.Run(script);
    double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", session.ConsumeOutput().c_str());
    if (!lima) {
      base_seconds = seconds;
      std::printf("Base: %.2fs\n\n", seconds);
    } else {
      std::printf("LIMA: %.2fs  (speedup %.1fx)\n", seconds,
                  base_seconds / seconds);
      std::printf("      %s\n", session.stats()->ToString().c_str());
    }
  }
  return 0;
}
