// The Fig. 5 scenario: a PCA + model-training pipeline where multi-level
// reuse pays off — repeated pca() calls are answered at function level,
// overlapping projections at operation level (partial reuse of A %*% V).
//
//   ./examples/pca_pipeline [rows] [cols]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algorithms/scripts.h"
#include "common/timer.h"
#include "lang/session.h"

int main(int argc, char** argv) {
  using namespace lima;
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;
  int64_t cols = argc > 2 ? std::atoll(argv[2]) : 50;

  const std::string script = scripts::Builtins() + R"(
    A = rand(rows=)" + std::to_string(rows) + R"(, cols=)" +
      std::to_string(cols) + R"(, min=-1, max=1, seed=3);
    y = A %*% rand(rows=)" + std::to_string(cols) + R"(, cols=1, seed=4);
    # Phase 1: sweep the projection dimensionality.
    for (K in 5:10) {
      [R, V] = pca(A, K);
      B = lm(R, y, 0, 1e-6, 1e-9, 0);
      print("K=" + K + " loss=" + l2norm(R, y, B));
    }
    # Phase 2: the winning K again, plus Naive Bayes tuning on top — the
    # pca(A, 8) call is reused at function level.
    [R, V] = pca(A, 8);
    Yc = rowIndexMax(A %*% matrix(0.5, ncol(A), 3));
    Rn = R - min(R);
    for (li in 1:5) {
      [prior, condp] = naiveBayes(Rn, Yc, 3, li * 0.5);
      pred = naiveBayesPredict(Rn, prior, condp);
      print("laplace=" + (li * 0.5) + " acc=" + mean(pred == Yc));
    }
  )";

  for (auto [name, config] :
       {std::pair<const char*, LimaConfig>{"Base", LimaConfig::Base()},
        {"LIMA (hybrid)", LimaConfig::Lima()},
        {"LIMA (multi-level)", LimaConfig::LimaMultiLevel()}}) {
    LimaSession session(config);
    StopWatch watch;
    Status status = session.Run(script);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    session.ConsumeOutput();  // identical across configs
    std::printf("%-20s %.2fs   %s\n", name, watch.ElapsedSeconds(),
                session.stats()->ToString().c_str());
  }
  return 0;
}
